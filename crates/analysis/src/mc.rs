//! A loom-lite interleaving model checker for the executor protocol.
//!
//! The parallel executor's `unsafe` is sound only under a disjointness
//! discipline (see `congest::executor::cells`): chunk claims partition
//! the node domain, each message slot has a unique writer per round and
//! a unique reader the round after, and the inter-sweep join orders the
//! two. The protocol itself — chunk claiming, the check→load→count→write
//! send sequence, the take…take→reset drain — is extracted behind
//! [`congest::executor::protocol`] as step-wise state machines, **one
//! shared-memory operation per step**.
//!
//! This module drives those same state machines over an instrumented
//! in-memory [`SlotMem`] with a deterministic scheduler that explores
//! *every* interleaving of the workers' steps (DFS with replay, the
//! classical stateless-model-checking loop). Because each step is one
//! shared op, enumerating step interleavings enumerates the orderings
//! of shared-memory accesses — which is exactly the space where a
//! disjointness bug would live.
//!
//! The checked contract, per complete execution:
//!
//! * chunk claims are pairwise disjoint and cover the domain;
//! * no slot is written twice (every write was preceded by that
//!   sender's occupancy check observing "empty" — occupancy ⇔ the
//!   engine's `DoubleSend` check);
//! * exactly one sender per destination observes `pending 0 → 1`
//!   (the touched-set nomination is unique);
//! * drains consume every occupied slot exactly once, then reset.
//!
//! One scenario is a deliberate **falsification**: two *different*
//! senders aimed at the same slot (forbidden by the sender-unique
//! `write_slot` mapping). The checker finds interleavings where both
//! occupancy checks pass before either write — a silent double write —
//! demonstrating that the occupancy check is a per-sender protocol, not
//! a cross-thread lock, and therefore that the slot-per-sender mapping
//! (and the debug epoch claims guarding it) is load-bearing.

use congest::executor::protocol::{ChunkClaimer, ClaimCursor, DrainSm, SendSm, SendStep, SlotMem};
use std::cell::{Cell, RefCell};
use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------------
// The explorer: exhaustive DFS over scheduler choices, with replay.
// ---------------------------------------------------------------------

/// A schedulable system of workers: the model checker repeatedly resets
/// it and drives it to completion, choosing which worker performs its
/// next shared-memory operation at every step.
pub trait System {
    /// Restores the initial state (a fresh execution).
    fn reset(&mut self);
    /// Ids of workers that can perform a step (not finished). Must be
    /// non-empty unless [`System::done`].
    fn runnable(&self) -> Vec<usize>;
    /// Performs worker `w`'s next shared-memory operation.
    fn step(&mut self, w: usize);
    /// Have all workers finished?
    fn done(&self) -> bool;
}

/// Exploration statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Explored {
    /// Number of complete executions (= interleavings explored).
    pub executions: u64,
    /// Total scheduler steps across all executions.
    pub steps: u64,
}

/// Exhaustively explores every interleaving of `sys`, invoking `check`
/// after each complete execution. DFS with replay: the scheduler
/// remembers its choice at every branch point (≥ 2 runnable workers)
/// and re-runs the system from scratch, advancing the last branch that
/// still has untried choices — the standard stateless-model-checking
/// loop, deterministic and dependency-free.
pub fn explore<S: System>(sys: &mut S, mut check: impl FnMut(&S)) -> Explored {
    let mut path: Vec<usize> = Vec::new();
    let mut executions = 0u64;
    let mut steps = 0u64;
    loop {
        sys.reset();
        let mut branch_arity: Vec<usize> = Vec::new();
        let mut depth = 0usize;
        while !sys.done() {
            let runnable = sys.runnable();
            assert!(!runnable.is_empty(), "not done, but nothing runnable");
            let w = if runnable.len() == 1 {
                runnable[0]
            } else {
                let choice = if depth < path.len() {
                    path[depth]
                } else {
                    path.push(0);
                    0
                };
                branch_arity.push(runnable.len());
                depth += 1;
                runnable[choice]
            };
            sys.step(w);
            steps += 1;
        }
        executions += 1;
        check(sys);
        // Advance to the next unexplored path: bump the deepest branch
        // point that still has an untried alternative, pruning the rest.
        loop {
            match path.pop() {
                None => return Explored { executions, steps },
                Some(c) => {
                    if c + 1 < branch_arity[path.len()] {
                        path.push(c + 1);
                        break;
                    }
                    branch_arity.pop();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// The instrumented shared memory.
// ---------------------------------------------------------------------

/// One shared-memory operation, as journaled by [`ModelMem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Worker `w` claimed the chunk starting at `lo`.
    Claim { w: usize, lo: usize },
    /// Worker `w` ran the occupancy check on `slot`.
    Check {
        w: usize,
        slot: usize,
        occupied: bool,
    },
    /// Worker `w` bumped `slot`'s edge-load accumulator.
    Load { w: usize, slot: usize },
    /// Worker `w` bumped `dest`'s pending count (previous value `prev`).
    Pending { w: usize, dest: usize, prev: u32 },
    /// Worker `w` wrote `slot`.
    Write { w: usize, slot: usize },
    /// Worker `w` took `slot` (`was_some`: was it occupied?).
    Take {
        w: usize,
        slot: usize,
        was_some: bool,
    },
    /// Worker `w` reset `dest`'s pending count.
    Reset { w: usize, dest: usize },
}

/// An in-memory [`SlotMem`] over plain vectors, with an operation
/// journal. Single-threaded by construction (the explorer interleaves
/// *logically*); interior mutability is `RefCell`/`Cell`, not atomics.
pub struct ModelMem {
    slots: RefCell<Vec<Option<u32>>>,
    pending: RefCell<Vec<u32>>,
    load: RefCell<Vec<u64>>,
    /// Every shared op of the current execution, in schedule order.
    pub journal: RefCell<Vec<Op>>,
    /// The worker currently stepping (set by the system before each op).
    pub cur_worker: Cell<usize>,
}

impl ModelMem {
    /// Empty memory with `slots` slots and `dests` destinations.
    pub fn new(slots: usize, dests: usize) -> Self {
        ModelMem {
            slots: RefCell::new(vec![None; slots]),
            pending: RefCell::new(vec![0; dests]),
            load: RefCell::new(vec![0; slots]),
            journal: RefCell::new(Vec::new()),
            cur_worker: Cell::new(usize::MAX),
        }
    }

    /// Clears state and journal; `seed_all` pre-occupies every slot and
    /// sets the matching pending counts (for drain scenarios).
    pub fn reset(&self, seed_all: Option<&[Range<usize>]>) {
        let mut slots = self.slots.borrow_mut();
        let mut pending = self.pending.borrow_mut();
        slots.iter_mut().for_each(|s| *s = None);
        pending.iter_mut().for_each(|p| *p = 0);
        self.load.borrow_mut().iter_mut().for_each(|l| *l = 0);
        self.journal.borrow_mut().clear();
        if let Some(ranges) = seed_all {
            for (dest, r) in ranges.iter().enumerate() {
                for s in r.clone() {
                    slots[s] = Some(s as u32);
                }
                pending[dest] = r.len() as u32;
            }
        }
    }

    /// Final slot contents (for post-execution assertions).
    pub fn slot_snapshot(&self) -> Vec<Option<u32>> {
        self.slots.borrow().clone()
    }

    /// Final pending counts.
    pub fn pending_snapshot(&self) -> Vec<u32> {
        self.pending.borrow().clone()
    }
}

impl SlotMem for ModelMem {
    type Payload = u32;

    fn slot_occupied(&self, slot: usize) -> bool {
        let occupied = self.slots.borrow()[slot].is_some();
        self.journal.borrow_mut().push(Op::Check {
            w: self.cur_worker.get(),
            slot,
            occupied,
        });
        occupied
    }

    fn slot_write(&self, slot: usize, payload: u32) {
        self.journal.borrow_mut().push(Op::Write {
            w: self.cur_worker.get(),
            slot,
        });
        self.slots.borrow_mut()[slot] = Some(payload);
    }

    fn slot_take(&self, slot: usize) -> Option<u32> {
        let v = self.slots.borrow_mut()[slot].take();
        self.journal.borrow_mut().push(Op::Take {
            w: self.cur_worker.get(),
            slot,
            was_some: v.is_some(),
        });
        v
    }

    fn edge_load_add(&self, slot: usize, bits: u64) {
        self.journal.borrow_mut().push(Op::Load {
            w: self.cur_worker.get(),
            slot,
        });
        self.load.borrow_mut()[slot] += bits;
    }

    fn pending_read(&self, dest: usize) -> u32 {
        self.pending.borrow()[dest]
    }

    fn pending_fetch_add(&self, dest: usize) -> u32 {
        let mut p = self.pending.borrow_mut();
        let prev = p[dest];
        p[dest] += 1;
        self.journal.borrow_mut().push(Op::Pending {
            w: self.cur_worker.get(),
            dest,
            prev,
        });
        prev
    }

    fn pending_reset(&self, dest: usize) {
        self.journal.borrow_mut().push(Op::Reset {
            w: self.cur_worker.get(),
            dest,
        });
        self.pending.borrow_mut()[dest] = 0;
    }
}

/// The model's claim cursor (journals through the owning system).
struct ModelCursor(Cell<usize>);

impl ClaimCursor for ModelCursor {
    fn fetch_add(&self, delta: usize) -> usize {
        let prev = self.0.get();
        self.0.set(prev + delta);
        prev
    }
}

// ---------------------------------------------------------------------
// The modeled sweep: workers claim chunks and run send machines.
// ---------------------------------------------------------------------

/// One message a domain position (a "node") emits during the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendSpec {
    /// Target slot (in the real executor: the sender-unique
    /// `write_slot[base + port]`).
    pub slot: usize,
    /// Destination node (pending-count index).
    pub dest: usize,
}

/// What one worker is doing.
enum WState {
    /// About to claim a chunk.
    Claim,
    /// Working through a claimed range of domain positions.
    Work {
        range: Range<usize>,
        pos: usize,
        send: usize,
        sm: Option<(SendSm, Option<u32>)>,
    },
    /// Draining destination `pos` of the claimed range.
    Drain {
        range: Range<usize>,
        pos: usize,
        sm: Option<DrainSm>,
    },
    /// Finished (claimed past the domain).
    Done,
}

/// Which sweep the workers run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepKind {
    /// Positions send messages per [`SweepModel::sends`].
    Send,
    /// Positions are destinations to drain (slot range per position
    /// from [`SweepModel::inbox`]).
    Drain,
}

/// A miniature executor sweep as a schedulable [`System`].
pub struct SweepModel {
    /// Worker count.
    pub workers: usize,
    /// Chunk size for the claimer.
    pub chunk: usize,
    /// Sends per domain position ([`SweepKind::Send`]).
    pub sends: Vec<Vec<SendSpec>>,
    /// Inbox slot range per domain position ([`SweepKind::Drain`]).
    pub inbox: Vec<Range<usize>>,
    /// Which sweep to run.
    pub kind: SweepKind,
    /// The shared memory (journaled).
    pub mem: ModelMem,
    cursor: ModelCursor,
    states: Vec<WState>,
}

impl SweepModel {
    /// A send sweep: `sends[pos]` lists each position's messages.
    pub fn send_sweep(
        workers: usize,
        chunk: usize,
        sends: Vec<Vec<SendSpec>>,
        dests: usize,
    ) -> Self {
        let slots = sends
            .iter()
            .flatten()
            .map(|s| s.slot + 1)
            .max()
            .unwrap_or(0);
        let states = (0..workers).map(|_| WState::Claim).collect();
        SweepModel {
            workers,
            chunk,
            sends,
            inbox: Vec::new(),
            kind: SweepKind::Send,
            mem: ModelMem::new(slots, dests),
            cursor: ModelCursor(Cell::new(0)),
            states,
        }
    }

    /// A drain sweep over pre-seeded inboxes: position `pos` drains
    /// destination `pos`, whose inbox is `inbox[pos]`.
    pub fn drain_sweep(workers: usize, chunk: usize, inbox: Vec<Range<usize>>) -> Self {
        let slots = inbox.iter().map(|r| r.end).max().unwrap_or(0);
        let dests = inbox.len();
        let states = (0..workers).map(|_| WState::Claim).collect();
        SweepModel {
            workers,
            chunk,
            sends: Vec::new(),
            inbox,
            kind: SweepKind::Drain,
            mem: ModelMem::new(slots, dests),
            cursor: ModelCursor(Cell::new(0)),
            states,
        }
    }

    fn domain_len(&self) -> usize {
        match self.kind {
            SweepKind::Send => self.sends.len(),
            SweepKind::Drain => self.inbox.len(),
        }
    }
}

impl System for SweepModel {
    fn reset(&mut self) {
        self.cursor.0.set(0);
        let seed: Vec<Range<usize>>;
        let seeded = match self.kind {
            SweepKind::Send => None,
            SweepKind::Drain => {
                seed = self.inbox.clone();
                Some(seed.as_slice())
            }
        };
        self.mem.reset(seeded);
        self.states = (0..self.workers).map(|_| WState::Claim).collect();
    }

    fn runnable(&self) -> Vec<usize> {
        (0..self.workers)
            .filter(|&w| !matches!(self.states[w], WState::Done))
            .collect()
    }

    fn done(&self) -> bool {
        self.states.iter().all(|s| matches!(s, WState::Done))
    }

    fn step(&mut self, w: usize) {
        self.mem.cur_worker.set(w);
        let claimer = ChunkClaimer {
            chunk: self.chunk,
            len: self.domain_len(),
        };
        // Loop over local (non-shared) transitions until this worker
        // performs exactly one shared-memory operation.
        loop {
            match &mut self.states[w] {
                WState::Claim => {
                    // One shared op: the cursor fetch_add.
                    let claimed = claimer.claim(&self.cursor);
                    if let Some(range) = &claimed {
                        self.mem
                            .journal
                            .borrow_mut()
                            .push(Op::Claim { w, lo: range.start });
                    }
                    self.states[w] = match claimed {
                        None => WState::Done,
                        Some(range) => match self.kind {
                            SweepKind::Send => WState::Work {
                                pos: range.start,
                                range,
                                send: 0,
                                sm: None,
                            },
                            SweepKind::Drain => WState::Drain {
                                pos: range.start,
                                range,
                                sm: None,
                            },
                        },
                    };
                    return;
                }
                WState::Work {
                    range,
                    pos,
                    send,
                    sm,
                } => {
                    if let Some((machine, payload)) = sm {
                        // One shared op: the machine's next step.
                        match machine.step(&self.mem, payload) {
                            SendStep::Checked { occupied: true } => {
                                // DoubleSend observed: the executor
                                // abandons this node's whole outbox.
                                *sm = None;
                                *send = usize::MAX;
                            }
                            SendStep::Done { .. } => {
                                *sm = None;
                                *send += 1;
                            }
                            SendStep::Checked { occupied: false }
                            | SendStep::Loaded
                            | SendStep::Counted => {}
                        }
                        return;
                    }
                    let list = &self.sends[*pos];
                    if *send < list.len() {
                        let spec = list[*send];
                        *sm = Some((SendSm::new(spec.slot, spec.dest, 1), Some(spec.slot as u32)));
                        // Machine construction is local; keep looping.
                    } else {
                        *pos += 1;
                        *send = 0;
                        if *pos >= range.end {
                            self.states[w] = WState::Claim;
                        }
                    }
                }
                WState::Drain { range, pos, sm } => {
                    if let Some(machine) = sm {
                        if machine.step(&self.mem).is_some() {
                            return; // one shared op (take or reset)
                        }
                        *sm = None;
                        *pos += 1;
                        if *pos >= range.end {
                            self.states[w] = WState::Claim;
                        }
                    } else {
                        let r = self.inbox[*pos].clone();
                        *sm = Some(DrainSm::new(*pos, r.start, r.end));
                    }
                }
                WState::Done => unreachable!("stepped a finished worker"),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Journal-level invariant checks.
// ---------------------------------------------------------------------

/// Per-execution facts distilled from the journal.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ExecFacts {
    /// Writes per slot.
    pub writes: Vec<usize>,
    /// Occupied-slot takes per slot.
    pub takes: Vec<usize>,
    /// `pending 0 → 1` transitions per destination (touched nominations).
    pub first_pendings: Vec<usize>,
    /// Resets per destination.
    pub resets: Vec<usize>,
    /// Occupancy checks that observed `occupied` (DoubleSend signals).
    pub double_send_signals: usize,
    /// Claimed chunk starts, in claim order.
    pub claims: Vec<usize>,
}

/// Distills `journal` into counts over `slots` slots and `dests`
/// destinations.
pub fn facts(journal: &[Op], slots: usize, dests: usize) -> ExecFacts {
    let mut f = ExecFacts {
        writes: vec![0; slots],
        takes: vec![0; slots],
        first_pendings: vec![0; dests],
        resets: vec![0; dests],
        ..Default::default()
    };
    for op in journal {
        match *op {
            Op::Write { slot, .. } => f.writes[slot] += 1,
            Op::Take {
                slot,
                was_some: true,
                ..
            } => f.takes[slot] += 1,
            Op::Pending { dest, prev: 0, .. } => f.first_pendings[dest] += 1,
            Op::Reset { dest, .. } => f.resets[dest] += 1,
            Op::Check { occupied: true, .. } => f.double_send_signals += 1,
            Op::Claim { lo, .. } => f.claims.push(lo),
            _ => {}
        }
    }
    f
}

/// Asserts the chunk-claim discipline: claims are pairwise disjoint and
/// cover `0..len` in `chunk`-sized pieces.
pub fn assert_claims_partition(claims: &[usize], chunk: usize, len: usize) {
    let mut sorted = claims.to_vec();
    sorted.sort_unstable();
    let expected: Vec<usize> = (0..len).step_by(chunk).collect();
    assert_eq!(
        sorted, expected,
        "chunk claims must partition the domain exactly once"
    );
}

// ---------------------------------------------------------------------
// Scenarios.
// ---------------------------------------------------------------------

/// The outcome of one scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioReport {
    /// Scenario id.
    pub name: &'static str,
    /// One-line description of what was verified.
    pub what: String,
    /// Interleavings exhaustively explored.
    pub executions: u64,
    /// Total scheduler steps.
    pub steps: u64,
    /// For falsification scenarios: interleavings exhibiting the bug.
    pub counterexamples: u64,
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} {:>9} interleavings {:>10} steps  {}",
            self.name, self.executions, self.steps, self.what
        )
    }
}

/// Scenario `disjoint-2x4`: the disciplined protocol — 2 workers, 4
/// nodes (chunk 2), 4 slots, 2 destinations; every node sends once into
/// its own slot, exactly as the sender-unique `write_slot` mapping
/// guarantees. Asserts, in **every** interleaving: claims partition the
/// domain, every slot is written exactly once, no DoubleSend signal
/// fires, and each destination is nominated for the touched set exactly
/// once.
pub fn disjoint_2x4() -> ScenarioReport {
    let sends: Vec<Vec<SendSpec>> = (0..4)
        .map(|i| {
            vec![SendSpec {
                slot: i,
                dest: i % 2,
            }]
        })
        .collect();
    let mut sys = SweepModel::send_sweep(2, 2, sends, 2);
    let explored = explore(&mut sys, |s| {
        let f = facts(&s.mem.journal.borrow(), 4, 2);
        assert_claims_partition(&f.claims, 2, 4);
        assert_eq!(f.writes, [1, 1, 1, 1], "every slot written exactly once");
        assert_eq!(f.double_send_signals, 0, "no occupancy check may fail");
        assert_eq!(f.first_pendings, [1, 1], "unique touched nomination");
        assert_eq!(s.mem.pending_snapshot(), [2, 2]);
        assert!(s.mem.slot_snapshot().iter().all(Option::is_some));
    });
    ScenarioReport {
        name: "disjoint-2x4",
        what: "disciplined sends: slot-unique writes + unique touched nomination".into(),
        executions: explored.executions,
        steps: explored.steps,
        counterexamples: 0,
    }
}

/// Scenario `double-send`: one node emits two messages on the same port
/// (slot 0) — the engine's `DoubleSend` error case. Asserts that in
/// every interleaving the second send's occupancy check observes the
/// slot occupied, the machine is abandoned before touching anything
/// else, and the slot still ends up written exactly once.
pub fn double_send_detected() -> ScenarioReport {
    let sends = vec![
        vec![SendSpec { slot: 0, dest: 0 }, SendSpec { slot: 0, dest: 0 }],
        vec![SendSpec { slot: 1, dest: 1 }],
    ];
    let mut sys = SweepModel::send_sweep(2, 1, sends, 2);
    let explored = explore(&mut sys, |s| {
        let f = facts(&s.mem.journal.borrow(), 2, 2);
        assert_eq!(f.writes, [1, 1], "the double send must not double-write");
        assert_eq!(
            f.double_send_signals, 1,
            "the second same-sender send always sees the slot occupied"
        );
    });
    ScenarioReport {
        name: "double-send",
        what: "same-sender double send is detected in every interleaving".into(),
        executions: explored.executions,
        steps: explored.steps,
        counterexamples: 0,
    }
}

/// Scenario `cross-sender-race` (**falsification**): two *different*
/// workers send into the *same* slot — the configuration the
/// sender-unique `write_slot` mapping makes impossible in the real
/// executor. The checker must find interleavings where both occupancy
/// checks pass before either write: a silent double write that no
/// `DoubleSend` error reports. Its existence is the proof that slot
/// occupancy is a per-sender protocol, not a cross-thread lock — i.e.
/// that the disjointness discipline (and the debug epoch claims that
/// enforce it) carries the executor's soundness.
pub fn cross_sender_race_falsified() -> ScenarioReport {
    let sends = vec![
        vec![SendSpec { slot: 0, dest: 0 }],
        vec![SendSpec { slot: 0, dest: 0 }],
    ];
    let mut sys = SweepModel::send_sweep(2, 1, sends, 1);
    let mut silent_double_writes = 0u64;
    let mut detected = 0u64;
    let explored = explore(&mut sys, |s| {
        let f = facts(&s.mem.journal.borrow(), 1, 1);
        match f.writes[0] {
            2 => {
                assert_eq!(
                    f.double_send_signals, 0,
                    "a double write implies neither check fired — it is silent"
                );
                silent_double_writes += 1;
            }
            1 => {
                assert_eq!(f.double_send_signals, 1);
                detected += 1;
            }
            n => panic!("slot written {n} times"),
        }
    });
    assert!(
        silent_double_writes > 0,
        "the race must be reachable (else the model is too coarse)"
    );
    assert!(
        detected > 0,
        "some interleavings must still detect the collision"
    );
    ScenarioReport {
        name: "cross-sender-race",
        what: format!(
            "falsified: {silent_double_writes} silent double-writes (occupancy is no lock)"
        ),
        executions: explored.executions,
        steps: explored.steps,
        counterexamples: silent_double_writes,
    }
}

/// Scenario `drain-2x4`: 2 workers drain 4 pre-seeded destinations
/// (chunk 2, 8 slots). Asserts every occupied slot is taken exactly
/// once, every pending count reset exactly once, and memory ends empty.
pub fn drain_2x4() -> ScenarioReport {
    let inbox: Vec<Range<usize>> = (0..4).map(|d| (2 * d)..(2 * d + 2)).collect();
    let mut sys = SweepModel::drain_sweep(2, 2, inbox);
    let explored = explore(&mut sys, |s| {
        let f = facts(&s.mem.journal.borrow(), 8, 4);
        assert_claims_partition(&f.claims, 2, 4);
        assert_eq!(f.takes, [1; 8], "every seeded slot taken exactly once");
        assert_eq!(f.resets, [1; 4], "every destination reset exactly once");
        assert!(s.mem.slot_snapshot().iter().all(Option::is_none));
        assert_eq!(s.mem.pending_snapshot(), [0; 4]);
    });
    ScenarioReport {
        name: "drain-2x4",
        what: "disjoint drains: unique takes, resets, empty final memory".into(),
        executions: explored.executions,
        steps: explored.steps,
        counterexamples: 0,
    }
}

/// Scenario `three-workers`: 3 workers race for 2 single-node chunks —
/// over-subscribed claiming, so in every interleaving at least one
/// worker must observe the exhausted cursor and retire empty-handed.
/// Asserts the claim partition and slot-unique writes under the extra
/// claim contention. (3 workers over 3 chunks explores ~17M
/// interleavings — minutes in a debug profile — so the over-subscribed
/// 2-chunk instance is the one that ships.)
pub fn three_workers() -> ScenarioReport {
    let sends: Vec<Vec<SendSpec>> = (0..2)
        .map(|i| vec![SendSpec { slot: i, dest: 0 }])
        .collect();
    let mut sys = SweepModel::send_sweep(3, 1, sends, 1);
    let explored = explore(&mut sys, |s| {
        let f = facts(&s.mem.journal.borrow(), 2, 1);
        assert_claims_partition(&f.claims, 1, 2);
        assert_eq!(f.writes, [1, 1]);
        assert_eq!(f.first_pendings, [1]);
    });
    ScenarioReport {
        name: "three-workers",
        what: "3-way claim contention keeps chunks disjoint".into(),
        executions: explored.executions,
        steps: explored.steps,
        counterexamples: 0,
    }
}

/// Runs every scenario, in order.
pub fn run_all_scenarios() -> Vec<ScenarioReport> {
    vec![
        disjoint_2x4(),
        double_send_detected(),
        cross_sender_race_falsified(),
        drain_2x4(),
        three_workers(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two workers, two private ops each, no interaction: the explorer
    /// must enumerate exactly C(4, 2) = 6 interleavings.
    struct Toy {
        left: [usize; 2],
    }

    impl System for Toy {
        fn reset(&mut self) {
            self.left = [2, 2];
        }
        fn runnable(&self) -> Vec<usize> {
            (0..2).filter(|&w| self.left[w] > 0).collect()
        }
        fn step(&mut self, w: usize) {
            self.left[w] -= 1;
        }
        fn done(&self) -> bool {
            self.left == [0, 0]
        }
    }

    #[test]
    fn explorer_is_exhaustive_on_a_closed_form_case() {
        let mut toy = Toy { left: [2, 2] };
        let explored = explore(&mut toy, |_| {});
        assert_eq!(explored.executions, 6, "C(4,2) interleavings of 2+2 ops");
        assert_eq!(explored.steps, 6 * 4);
    }

    #[test]
    fn disciplined_sweep_holds_in_every_interleaving() {
        let r = disjoint_2x4();
        assert!(
            r.executions >= 1000,
            "2 workers x 4 slots must branch richly, got {}",
            r.executions
        );
        assert_eq!(r.counterexamples, 0);
    }

    #[test]
    fn double_send_is_always_detected() {
        let r = double_send_detected();
        assert!(r.executions > 1);
        assert_eq!(r.counterexamples, 0);
    }

    #[test]
    fn cross_sender_race_is_falsified() {
        let r = cross_sender_race_falsified();
        assert!(r.counterexamples > 0, "the silent double write must exist");
        assert!(r.counterexamples < r.executions, "but not in every order");
    }

    #[test]
    fn drains_are_exclusive_and_complete() {
        let r = drain_2x4();
        assert!(r.executions >= 100);
        assert_eq!(r.counterexamples, 0);
    }

    #[test]
    fn three_way_claims_stay_disjoint() {
        let r = three_workers();
        assert!(r.executions > 10);
        assert_eq!(r.counterexamples, 0);
    }
}
