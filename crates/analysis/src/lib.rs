//! Static analysis + model checking for the min-cut workspace.
//!
//! Two subsystems, both runnable as binaries and exercised by CI:
//!
//! * [`lint`] (binary `congest_lint`) — a hand-rolled source linter (the
//!   container is offline; there is no `syn`) enforcing the workspace's
//!   *conventional* invariants, the ones the compiler cannot see:
//!   unsafe code confined to the executor-core allowlist with a
//!   `SAFETY:` justification at every site, phase-name literals
//!   conforming to the `stem.sub` grammar and the central registry in
//!   [`congest::phase`], no nondeterminism primitives in replay-exact
//!   code paths, and the offline dependency stubs in sync with their
//!   README contract.
//! * [`mc`] (binary `interleave_check`) — a loom-lite interleaving
//!   model checker for the parallel executor's shared-memory protocol
//!   ([`congest::executor::protocol`]): miniature sweeps are run under
//!   a deterministic scheduler that exhaustively enumerates thread
//!   interleavings, asserting the disjointness contract the executor's
//!   `unsafe` relies on — and *falsifying* the variant the discipline
//!   exists to prevent.
//!
//! See `docs/analysis.md` for the invariant catalogue and how CI wires
//! both in.

pub mod lint;
pub mod mc;
pub mod scan;
