//! A hand-rolled lexical scanner for Rust source.
//!
//! The lint container is fully offline, so there is no `syn`/`proc-macro2`
//! to lean on; the lints in this crate need much less than a parse anyway.
//! This scanner splits a source file into [`Piece`]s — code, comments, and
//! string literals — handling the lexical constructs that make naive
//! regex/substring scanning wrong:
//!
//! * line comments and **nested** block comments (`/* /* */ */`);
//! * string literals with escapes (`"\""`), raw strings with hash fences
//!   (`r#"…"#`), and byte-string variants;
//! * char literals (`'"'`, `'\''`) vs. lifetimes (`'a`), so an apostrophe
//!   does not open a bogus "string";
//! * identifier boundaries, so the word `unsafe` is found in
//!   `unsafe impl` but not in `unsafe_code` or `"unsafe"`.
//!
//! What it deliberately does **not** do: macro expansion, path resolution,
//! type checking. The lints compensate by matching on lexical context
//! (e.g. "a string literal immediately preceded by `run(`"), which is
//! stable for the idioms this workspace actually uses.

/// One lexical piece of a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Piece {
    /// A run of plain code (everything that is not a comment or string).
    Code {
        /// The verbatim text.
        text: String,
        /// 1-based line of the piece's first character.
        line: usize,
    },
    /// A string literal (regular, raw, or byte); `text` excludes the
    /// quotes and any raw-string fences.
    Str {
        /// The literal's content, verbatim (escapes not processed).
        text: String,
        /// 1-based line of the opening quote.
        line: usize,
    },
    /// A comment; `text` excludes the delimiters, `doc` marks
    /// `///`/`//!`/`/**`/`/*!` forms.
    Comment {
        /// The comment body.
        text: String,
        /// 1-based line where the comment starts.
        line: usize,
        /// Is this a doc comment?
        doc: bool,
    },
}

impl Piece {
    /// The 1-based starting line of this piece.
    pub fn line(&self) -> usize {
        match self {
            Piece::Code { line, .. } | Piece::Str { line, .. } | Piece::Comment { line, .. } => {
                *line
            }
        }
    }
}

/// A word (identifier or keyword) found in code, with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    /// The identifier text.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

/// Splits `src` into lexical pieces. Unterminated constructs (a string or
/// block comment running to EOF) are tolerated and yield a final piece —
/// the lints should report real violations, not choke on odd files.
pub fn lex(src: &str) -> Vec<Piece> {
    let b = src.as_bytes();
    let mut pieces = Vec::new();
    let mut code = String::new();
    let mut code_line = 1usize;
    let mut line = 1usize;
    let mut i = 0usize;

    macro_rules! flush_code {
        () => {
            if !code.is_empty() {
                pieces.push(Piece::Code {
                    text: std::mem::take(&mut code),
                    line: code_line,
                });
            }
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                flush_code!();
                let start_line = line;
                let doc = matches!(b.get(i + 2), Some(b'/') | Some(b'!'));
                let mut j = i + 2;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                pieces.push(Piece::Comment {
                    text: src[i + 2..j].to_string(),
                    line: start_line,
                    doc,
                });
                i = j;
                code_line = line;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                flush_code!();
                let start_line = line;
                let doc = matches!(b.get(i + 2), Some(b'*') | Some(b'!'));
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(i + 2);
                pieces.push(Piece::Comment {
                    text: src[i + 2..end].to_string(),
                    line: start_line,
                    doc,
                });
                i = j;
                code_line = line;
            }
            b'"' => {
                flush_code!();
                let start_line = line;
                let mut j = i + 1;
                while j < b.len() {
                    match b[j] {
                        b'\\' => j += 2,
                        b'\n' => {
                            line += 1;
                            j += 1;
                        }
                        b'"' => break,
                        _ => j += 1,
                    }
                }
                let end = j.min(b.len());
                pieces.push(Piece::Str {
                    text: src[i + 1..end].to_string(),
                    line: start_line,
                });
                i = end + 1;
                code_line = line;
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                // r"…", r#"…"#, br"…", b"…" etc.: find the quote, count
                // the hash fence, then scan to `"` followed by that many
                // hashes.
                let start_line = line;
                let mut j = i;
                while b[j] != b'"' && b[j] != b'#' {
                    j += 1;
                }
                let mut hashes = 0usize;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                // `j` is now at the opening quote.
                flush_code!();
                let content_start = j + 1;
                let mut k = content_start;
                'scan: while k < b.len() {
                    if b[k] == b'\n' {
                        line += 1;
                        k += 1;
                        continue;
                    }
                    if b[k] == b'"' {
                        let mut h = 0;
                        while h < hashes && k + 1 + h < b.len() && b[k + 1 + h] == b'#' {
                            h += 1;
                        }
                        if h == hashes {
                            break 'scan;
                        }
                    }
                    k += 1;
                }
                let content_end = k.min(b.len());
                pieces.push(Piece::Str {
                    text: src[content_start..content_end].to_string(),
                    line: start_line,
                });
                i = (content_end + 1 + hashes).min(b.len());
                code_line = line;
            }
            b'\'' => {
                // Char literal or lifetime. A char literal is 'x', '\n',
                // '\'', '\u{…}'; a lifetime is 'ident with no closing
                // quote. Distinguish by looking for the closing quote.
                if code.is_empty() {
                    code_line = line;
                }
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    // Escaped char literal: consume through the closing '.
                    let mut j = i + 2;
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                    code.push_str(&src[i..(j + 1).min(b.len())]);
                    i = j + 1;
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    // Plain char literal 'x' (x may be any byte but \).
                    code.push_str(&src[i..i + 3]);
                    if b[i + 1] == b'\n' {
                        line += 1;
                    }
                    i += 3;
                } else {
                    // A lifetime (or `'static`): just the apostrophe; the
                    // identifier is consumed as ordinary code.
                    code.push('\'');
                    i += 1;
                }
            }
            _ => {
                if code.is_empty() {
                    code_line = line;
                }
                if c == b'\n' {
                    line += 1;
                }
                code.push(c as char);
                // Multi-byte UTF-8: push the raw bytes as chars is wrong;
                // copy the whole scalar instead.
                if c >= 0x80 {
                    code.pop();
                    let ch_len = utf8_len(c);
                    code.push_str(&src[i..i + ch_len]);
                    i += ch_len;
                    continue;
                }
                i += 1;
            }
        }
    }
    flush_code!();
    pieces
}

/// Does position `i` (pointing at `r` or `b`) start a raw/byte string?
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // Reject when preceded by an identifier char ("prior" is part of a
    // larger word like `ptr` or `rb`).
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    // Accept prefixes r, b, br, rb (lexically; rustc only allows some).
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') && j - i < 2 {
        j += 1;
    }
    if j == i {
        return false;
    }
    let mut k = j;
    while k < b.len() && b[k] == b'#' {
        k += 1;
    }
    // A raw form needs either hashes or the r prefix; a bare b"…" is
    // handled here too (same scanning works with zero hashes).
    k < b.len() && b[k] == b'"' && (k > j || b[i] != b'b' || j == i + 1)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

/// Extracts every identifier/keyword word from the code pieces of `pieces`,
/// with line numbers (comments and strings do not contribute).
pub fn code_words(pieces: &[Piece]) -> Vec<Word> {
    let mut words = Vec::new();
    for p in pieces {
        let Piece::Code { text, line } = p else {
            continue;
        };
        let mut cur_line = *line;
        let bytes = text.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            if c == b'\n' {
                cur_line += 1;
                i += 1;
            } else if c.is_ascii_alphabetic() || c == b'_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                words.push(Word {
                    text: text[start..i].to_string(),
                    line: cur_line,
                });
            } else {
                i += 1;
            }
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|p| match p {
                Piece::Str { text, .. } => Some(text),
                _ => None,
            })
            .collect()
    }

    fn word_list(src: &str) -> Vec<String> {
        code_words(&lex(src)).into_iter().map(|w| w.text).collect()
    }

    #[test]
    fn comments_do_not_hide_in_strings_nor_vice_versa() {
        let src = r##"let a = "// not a comment"; // real "not a string"
/* block "ignored" /* nested */ still comment */ let b = 1;"##;
        let pieces = lex(src);
        assert_eq!(strs(src), ["// not a comment"]);
        let comments: Vec<_> = pieces
            .iter()
            .filter(|p| matches!(p, Piece::Comment { .. }))
            .collect();
        assert_eq!(comments.len(), 2);
        assert!(word_list(src).contains(&"let".to_string()));
        assert!(!word_list(src).contains(&"ignored".to_string()));
    }

    #[test]
    fn escapes_and_raw_strings_lex_correctly() {
        let src = r###"let s = "quote \" inside"; let r = r#"raw "quoted" text"#;"###;
        assert_eq!(strs(src), [r#"quote \" inside"#, r#"raw "quoted" text"#]);
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_open_strings() {
        let src = "fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; let s = \"real\"; }";
        assert_eq!(strs(src), ["real"]);
    }

    #[test]
    fn words_respect_identifier_boundaries() {
        let src =
            "#![deny(unsafe_code)] unsafe impl Foo {} // unsafe in comment\nlet s = \"unsafe\";";
        let words = word_list(src);
        assert_eq!(
            words.iter().filter(|w| *w == "unsafe").count(),
            1,
            "only the real keyword counts: {words:?}"
        );
        assert!(words.contains(&"unsafe_code".to_string()));
    }

    #[test]
    fn line_numbers_track_multiline_pieces() {
        let src = "line1\nline2 /* c\nc */ \"s\"\nunsafe";
        let words = code_words(&lex(src));
        let u = words.iter().find(|w| w.text == "unsafe").expect("found");
        assert_eq!(u.line, 4);
    }
}
