//! The workspace invariant lints behind the `congest_lint` binary.
//!
//! Each lint enforces a convention that carries real correctness weight
//! but that `rustc` cannot check:
//!
//! * **`unsafe-allowlist`** — `unsafe` appears only in the executor
//!   core ([`UNSAFE_ALLOWLIST`]). The crate root's `#![deny(unsafe_code)]`
//!   enforces this *inside* `congest`; the lint extends it to every
//!   crate in the workspace, including future ones.
//! * **`safety-comment`** — every `unsafe` keyword (block, fn, impl)
//!   is introduced by a comment block mentioning `SAFETY`/`# Safety`,
//!   so each site states the discipline it relies on.
//! * **`phase-registry`** — every phase-name string literal in the
//!   pipeline (`crates/core/src`) and the CI gates (`crates/bench/src`)
//!   parses under the `stem.sub` grammar and carries a stem registered
//!   in [`congest::phase::REGISTERED_STEMS`]; `format!`-built names are
//!   checked with their holes substituted, and prefix matchers
//!   (`messages_matching`, `starts_with`) must prefix a registered
//!   stem. A typo'd stem silently falls out of the metrics aggregation
//!   and the message/chaos budget gates — this is the lint that makes
//!   that a build failure instead.
//! * **`determinism`** — replay-exact code paths (`sim/`, `dist/`)
//!   must not use wall-clock time, hash-order iteration, or ambient
//!   randomness ([`DETERMINISM_BANNED`]); those paths back the fault
//!   injector's byte-for-byte reproducibility claims.
//! * **`stub-drift`** — the offline dependency stand-ins under
//!   `crates/stubs/` stay in sync with their README contract: every
//!   stub crate has a README row, every README-documented item exists
//!   in the stub's source, and every stub-exported item the workspace
//!   actually consumes is documented.

use crate::scan::{code_words, lex, Piece};
use congest::phase;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Files allowed to contain the `unsafe` keyword (workspace-relative,
/// forward slashes): the executor core and nothing else.
pub const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/congest/src/executor/cells.rs",
    "crates/congest/src/executor/sweep.rs",
];

/// Identifiers banned in replay-exact paths (`sim/`, `dist/`):
/// hash-order iteration and wall-clock/entropy sources.
pub const DETERMINISM_BANNED: &[&str] = &[
    "HashMap",
    "HashSet",
    "Instant",
    "SystemTime",
    "thread_rng",
    "from_entropy",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Which lint fired (stable kebab-case id).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Runs every lint over the workspace rooted at `root` and returns the
/// findings sorted by file and line. Directories named `target`, `.git`,
/// or `fixtures` are skipped (the last holds this crate's deliberately
/// violating test inputs).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for top in ["src", "crates", "examples", "tests", "benches"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut sources = Vec::new();
    for path in &files {
        let rel = rel_path(root, path);
        let src = fs::read_to_string(path)?;
        let pieces = lex(&src);
        sources.push((rel, src, pieces));
    }

    let mut out = Vec::new();
    for (rel, src, pieces) in &sources {
        unsafe_lints(rel, src, pieces, &mut out);
        if rel.contains("/sim/") || rel.contains("/dist/") {
            determinism_lints(rel, pieces, &mut out);
        }
        if rel.starts_with("crates/core/src/") || rel.starts_with("crates/bench/src/") {
            phase_lints(rel, pieces, &mut out);
        }
    }
    stub_lints(root, &sources, &mut out)?;

    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

// ---------------------------------------------------------------------
// unsafe-allowlist + safety-comment
// ---------------------------------------------------------------------

fn unsafe_lints(rel: &str, src: &str, pieces: &[Piece], out: &mut Vec<Violation>) {
    let mut unsafe_lines: Vec<usize> = code_words(pieces)
        .into_iter()
        .filter(|w| w.text == "unsafe")
        .map(|w| w.line)
        .collect();
    unsafe_lines.dedup();
    if unsafe_lines.is_empty() {
        return;
    }
    if !UNSAFE_ALLOWLIST.contains(&rel) {
        for line in unsafe_lines {
            out.push(Violation {
                file: rel.to_string(),
                line,
                rule: "unsafe-allowlist",
                msg: format!(
                    "`unsafe` outside the executor-core allowlist ({})",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            });
        }
        return;
    }

    // Allowlisted file: every `unsafe` needs a SAFETY justification in
    // the contiguous comment/attribute block introducing it.
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut comment_at: BTreeMap<usize, String> = BTreeMap::new();
    let mut code_on: BTreeSet<usize> = BTreeSet::new();
    for p in pieces {
        match p {
            Piece::Comment { text, line, .. } => {
                for (i, _) in text.split('\n').enumerate() {
                    comment_at
                        .entry(line + i)
                        .or_default()
                        .push_str(&text.to_lowercase());
                }
            }
            Piece::Code { text, line } => {
                for (i, seg) in text.split('\n').enumerate() {
                    if !seg.trim().is_empty() {
                        code_on.insert(line + i);
                    }
                }
            }
            Piece::Str { text, line } => {
                for i in 0..=text.matches('\n').count() {
                    code_on.insert(line + i);
                }
            }
        }
    }

    let has_safety =
        |l: usize| -> bool { comment_at.get(&l).is_some_and(|c| c.contains("safety")) };

    for line in unsafe_lines {
        let mut found = has_safety(line);
        let mut k = line;
        while !found && k > 1 {
            k -= 1;
            let raw = raw_lines.get(k - 1).map(|l| l.trim()).unwrap_or("");
            if raw.is_empty() {
                continue;
            }
            if has_safety(k) {
                found = true;
                break;
            }
            if code_on.contains(&k) {
                // Attributes between the comment and the item are fine;
                // any other code ends the introducing block.
                if raw.starts_with("#[") || raw.starts_with("#![") {
                    continue;
                }
                break;
            }
            // A non-SAFETY comment line: keep walking the block.
        }
        if !found {
            out.push(Violation {
                file: rel.to_string(),
                line,
                rule: "safety-comment",
                msg: "`unsafe` without a `// SAFETY:` (or `# Safety`) comment \
                      in its introducing comment block"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------

fn determinism_lints(rel: &str, pieces: &[Piece], out: &mut Vec<Violation>) {
    for w in code_words(pieces) {
        if DETERMINISM_BANNED.contains(&w.text.as_str()) {
            out.push(Violation {
                file: rel.to_string(),
                line: w.line,
                rule: "determinism",
                msg: format!(
                    "`{}` in a replay-exact path (sim/, dist/): use BTree* \
                     collections, metered virtual time, and seeded RNG instead",
                    w.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// phase-registry
// ---------------------------------------------------------------------

/// Does `ctx` (whitespace-stripped code context) end with `pat` as a
/// word — i.e. not as the tail of a longer identifier? A `pat` whose
/// first character is not a letter/digit is self-bounding: `.run(`
/// cannot be the tail of a longer identifier, and `_matching(` is
/// *deliberately* an identifier-suffix pattern (matching
/// `messages_matching(`), so those skip the boundary check.
fn ends_with_word(ctx: &str, pat: &str) -> bool {
    if !ctx.ends_with(pat) {
        return false;
    }
    !pat.chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphanumeric())
        || ctx[..ctx.len() - pat.len()]
            .chars()
            .next_back()
            .is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_'))
}

/// Replaces every `{…}` format hole with `x0`, `x1`, … . Escaped braces
/// (`{{`/`}}`) are left in place — they make the result grammar-invalid,
/// which correctly excludes the literal from phase checking.
fn subst_holes(s: &str) -> String {
    let mut result = String::new();
    let mut n = 0usize;
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'{' {
            if b.get(i + 1) == Some(&b'{') {
                result.push('{');
                i += 2;
                continue;
            }
            let mut j = i + 1;
            while j < b.len() && b[j] != b'}' {
                j += 1;
            }
            result.push_str(&format!("x{n}"));
            n += 1;
            i = j + 1;
        } else if b[i] == b'}' && b.get(i + 1) == Some(&b'}') {
            result.push('}');
            i += 2;
        } else {
            result.push(b[i] as char);
            i += 1;
        }
    }
    result
}

fn phase_lints(rel: &str, pieces: &[Piece], out: &mut Vec<Violation>) {
    let mut ctx = String::new();
    for p in pieces {
        match p {
            Piece::Comment { .. } => {}
            Piece::Code { text, .. } => {
                ctx.extend(text.chars().filter(|c| !c.is_whitespace()));
                if ctx.len() > 64 {
                    // Keep only the tail (nudged up to a char boundary
                    // for the rare non-ASCII code char).
                    let mut cut = ctx.len() - 64;
                    while !ctx.is_char_boundary(cut) {
                        cut += 1;
                    }
                    ctx.drain(..cut);
                }
            }
            Piece::Str { text, line } => {
                if ends_with_word(&ctx, ".run(") || ends_with_word(&ctx, ".run_with(") {
                    // A phase name passed directly to Network::run (the
                    // method-call form — a bare `run("…")` is some local
                    // helper whose argument is not a phase name).
                    if !phase::is_registered(text) {
                        out.push(Violation {
                            file: rel.to_string(),
                            line: *line,
                            rule: "phase-registry",
                            msg: format!(
                                "phase name {text:?} is not grammar-valid with a stem \
                                 registered in congest::phase::REGISTERED_STEMS"
                            ),
                        });
                    }
                } else if ends_with_word(&ctx, "format!(") {
                    // A format template. Only judge it when it is
                    // phase-shaped: dotted, grammar-valid after hole
                    // substitution, and with a hole-free stem (a hole in
                    // the stem position is not statically checkable).
                    let stem_text = text.split('.').next().unwrap_or(text);
                    let subst = subst_holes(text);
                    if subst.contains('.')
                        && !stem_text.contains('{')
                        && phase::is_valid_name(&subst)
                        && !phase::is_registered(&subst)
                    {
                        out.push(Violation {
                            file: rel.to_string(),
                            line: *line,
                            rule: "phase-registry",
                            msg: format!(
                                "format template {text:?} builds a phase name whose stem \
                                 {stem_text:?} is not in congest::phase::REGISTERED_STEMS"
                            ),
                        });
                    }
                } else if ends_with_word(&ctx, ".obs_emit(") {
                    // An obs stage-marker event name. Event names share
                    // the phase grammar and registry (the `transport`
                    // stem exists for the executor's own events), so a
                    // typo'd marker is caught exactly like a typo'd
                    // phase.
                    if !phase::is_registered(text) {
                        out.push(Violation {
                            file: rel.to_string(),
                            line: *line,
                            rule: "phase-registry",
                            msg: format!(
                                "obs event name {text:?} is not grammar-valid with a stem \
                                 registered in congest::phase::REGISTERED_STEMS"
                            ),
                        });
                    }
                } else if ends_with_word(&ctx, "_matching(")
                    || ends_with_word(&ctx, ".starts_with(")
                {
                    // A phase-name prefix used by the metrics gates. It
                    // must be a (possibly partial) prefix of a registered
                    // name: dot-terminated prefixes must parse, and the
                    // first segment must prefix a registered stem.
                    let trimmed = text.trim_end_matches('.');
                    let first = trimmed.split('.').next().unwrap_or(trimmed);
                    let ok = !trimmed.is_empty()
                        && phase::is_valid_name(trimmed)
                        && phase::REGISTERED_STEMS.iter().any(|s| s.starts_with(first));
                    if !ok {
                        out.push(Violation {
                            file: rel.to_string(),
                            line: *line,
                            rule: "phase-registry",
                            msg: format!(
                                "phase prefix {text:?} does not prefix any stem in \
                                 congest::phase::REGISTERED_STEMS"
                            ),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// stub-drift
// ---------------------------------------------------------------------

/// A `pub` item exported at non-`impl` scope, or a `macro_rules!` macro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubItem {
    /// Item kind keyword (`fn`, `struct`, `trait`, …, or `macro`).
    pub kind: String,
    /// Item name.
    pub name: String,
}

/// Extracts the exported surface of a stub source file: `pub` items
/// outside `impl` blocks (methods are reached through their types, so
/// the type name is the documented unit) plus `macro_rules!` macros.
pub fn extract_pub_items(pieces: &[Piece]) -> Vec<PubItem> {
    const ITEM_KINDS: &[&str] = &["fn", "struct", "trait", "enum", "type", "const", "static"];
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut impl_regions: Vec<usize> = Vec::new();
    let mut pending_impl = false;
    let mut pending_fn = false;
    // `Some(kind)` after `pub <kind>`, waiting for the name.
    let mut awaiting_name: Option<String> = None;
    let mut awaiting_macro_name = false;
    let mut pub_pending = false;

    for p in pieces {
        let Piece::Code { text, .. } = p else {
            continue;
        };
        let b = text.as_bytes();
        let mut i = 0;
        while i < b.len() {
            let c = b[i];
            if c.is_ascii_alphabetic() || c == b'_' {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &text[start..i];
                if awaiting_macro_name {
                    items.push(PubItem {
                        kind: "macro".to_string(),
                        name: word.to_string(),
                    });
                    awaiting_macro_name = false;
                    // Suppress the macro *body* like an impl block: a
                    // `pub fn $name()` template inside it is not a real
                    // export of the enclosing module.
                    pending_impl = true;
                } else if let Some(kind) = awaiting_name.take() {
                    items.push(PubItem {
                        kind,
                        name: word.to_string(),
                    });
                } else {
                    match word {
                        "pub" => {
                            // `pub(crate)`/`pub(super)` are not exported
                            // surface; peek for the restriction.
                            let mut j = i;
                            while j < b.len() && b[j].is_ascii_whitespace() {
                                j += 1;
                            }
                            pub_pending = b.get(j) != Some(&b'(');
                        }
                        "macro_rules" => awaiting_macro_name = true,
                        "impl" if !pending_fn => pending_impl = true,
                        "fn" => {
                            if pub_pending && impl_regions.is_empty() {
                                awaiting_name = Some("fn".to_string());
                            }
                            pending_fn = true;
                            pub_pending = false;
                        }
                        k if ITEM_KINDS.contains(&k) => {
                            if pub_pending && impl_regions.is_empty() {
                                awaiting_name = Some(k.to_string());
                            }
                            pub_pending = false;
                        }
                        "use" | "mod" => pub_pending = false,
                        _ => {}
                    }
                }
            } else {
                match c {
                    b'{' => {
                        if pending_impl {
                            impl_regions.push(depth);
                            pending_impl = false;
                        }
                        pending_fn = false;
                        depth += 1;
                    }
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        if impl_regions.last() == Some(&depth) {
                            impl_regions.pop();
                        }
                    }
                    b';' => {
                        pending_impl = false;
                        pending_fn = false;
                    }
                    b'!' if awaiting_macro_name => {} // macro_rules! name
                    _ => {}
                }
                i += 1;
            }
        }
    }
    items
}

/// The backticked identifier chunks of one README table row:
/// `` `SeedableRng::seed_from_u64` `` yields `SeedableRng` and
/// `seed_from_u64`; `` `prop_assert*` `` yields the prefix pattern
/// `prop_assert*`.
fn row_chunks(row: &str) -> Vec<String> {
    let mut chunks = Vec::new();
    for (idx, span) in row.split('`').enumerate() {
        if idx % 2 == 0 {
            continue; // outside backticks
        }
        let mut cur = String::new();
        for ch in span.chars() {
            if ch.is_ascii_alphanumeric() || ch == '_' || ch == '*' {
                cur.push(ch);
            } else if !cur.is_empty() {
                chunks.push(std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            chunks.push(cur);
        }
    }
    chunks
}

/// Does `name` match any documented chunk — exactly, or via a starred
/// prefix pattern (`prop_assert*` matches `prop_assert_eq`)?
fn documented(chunks: &[String], name: &str) -> bool {
    chunks.iter().any(|c| {
        if let Some(prefix) = c.strip_suffix('*') {
            !prefix.is_empty() && name.starts_with(prefix)
        } else {
            c == name
        }
    })
}

fn stub_lints(
    root: &Path,
    sources: &[(String, String, Vec<Piece>)],
    out: &mut Vec<Violation>,
) -> io::Result<()> {
    let stubs_dir = root.join("crates/stubs");
    let readme_path = stubs_dir.join("README.md");
    if !stubs_dir.is_dir() || !readme_path.is_file() {
        return Ok(()); // Nothing to check (e.g. a lint-test fixture tree).
    }
    let readme_rel = rel_path(root, &readme_path);
    let readme = fs::read_to_string(&readme_path)?;

    // Table rows: `| `name` | … |`, keyed by the first backticked chunk.
    let mut rows: BTreeMap<String, (usize, Vec<String>)> = BTreeMap::new();
    for (i, line) in readme.lines().enumerate() {
        let t = line.trim();
        if !t.starts_with('|') || t.contains("---") || !t.contains('`') {
            continue;
        }
        let chunks = row_chunks(t);
        if let Some((name, rest)) = chunks.split_first() {
            if name == "stub" {
                continue; // header row
            }
            rows.insert(name.clone(), (i + 1, rest.to_vec()));
        }
    }

    // The words used anywhere in the workspace outside the stubs — the
    // consumers whose imports the README must describe.
    let mut used_words: BTreeSet<&str> = BTreeSet::new();
    for (rel, _, pieces) in sources {
        if rel.starts_with("crates/stubs/") {
            continue;
        }
        for p in pieces {
            if let Piece::Code { text, .. } = p {
                let bytes = text.as_bytes();
                let mut i = 0;
                while i < bytes.len() {
                    if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
                        let start = i;
                        while i < bytes.len()
                            && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                        {
                            i += 1;
                        }
                        used_words.insert(&text[start..i]);
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    let mut stub_dirs: Vec<String> = Vec::new();
    for entry in fs::read_dir(&stubs_dir)? {
        let entry = entry?;
        if entry.path().is_dir() {
            stub_dirs.push(entry.file_name().to_string_lossy().to_string());
        }
    }
    stub_dirs.sort();

    for stub in &stub_dirs {
        let Some((_, chunks)) = rows.get(stub) else {
            out.push(Violation {
                file: readme_rel.clone(),
                line: 1,
                rule: "stub-drift",
                msg: format!("stub crate `{stub}` has no row in the stubs README table"),
            });
            continue;
        };

        // Words and exported items of this stub's sources.
        let prefix = format!("crates/stubs/{stub}/");
        let mut stub_words: BTreeSet<String> = BTreeSet::new();
        let mut items: Vec<PubItem> = Vec::new();
        for (rel, _, pieces) in sources {
            if !rel.starts_with(&prefix) {
                continue;
            }
            for w in code_words(pieces) {
                stub_words.insert(w.text);
            }
            items.extend(extract_pub_items(pieces));
        }

        // Documented-but-absent: every README chunk must exist in the
        // stub's sources (starred chunks as prefixes).
        for c in chunks {
            if c.len() < 3 {
                continue;
            }
            let present = if let Some(p) = c.strip_suffix('*') {
                stub_words.iter().any(|w| w.starts_with(p))
            } else {
                stub_words.contains(c.as_str())
            };
            if !present {
                out.push(Violation {
                    file: readme_rel.clone(),
                    line: rows[stub].0,
                    rule: "stub-drift",
                    msg: format!(
                        "README documents `{c}` for stub `{stub}`, but no such \
                         identifier exists in its sources"
                    ),
                });
            }
        }

        // Used-but-undocumented: every exported item the workspace
        // consumes must be in the README row.
        let mut seen = BTreeSet::new();
        for item in items {
            if !seen.insert(item.name.clone()) {
                continue;
            }
            if used_words.contains(item.name.as_str()) && !documented(chunks, &item.name) {
                out.push(Violation {
                    file: readme_rel.clone(),
                    line: rows[stub].0,
                    rule: "stub-drift",
                    msg: format!(
                        "stub `{stub}` exports {} `{}`, which the workspace uses \
                         but the README row does not document",
                        item.kind, item.name
                    ),
                });
            }
        }
    }

    // Rows naming stubs that do not exist.
    for (name, (line, _)) in &rows {
        if !stub_dirs.contains(name) {
            out.push(Violation {
                file: readme_rel.clone(),
                line: *line,
                rule: "stub-drift",
                msg: format!("README table row for `{name}` has no crates/stubs/{name} crate"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::lex;

    #[test]
    fn subst_holes_replaces_format_holes() {
        assert_eq!(subst_holes("mstA.l{level}.exch"), "mstA.lx0.exch");
        assert_eq!(subst_holes("recover.e{epoch}.{}"), "recover.ex0.x1");
        assert_eq!(subst_holes("{{literal}}"), "{literal}");
        assert_eq!(subst_holes("{:.1e}"), "x0");
    }

    #[test]
    fn ends_with_word_respects_boundaries() {
        assert!(ends_with_word("net.run(", ".run("));
        assert!(!ends_with_word("overrun(", ".run("));
        assert!(!ends_with_word("run(", ".run("), "bare helper calls skip");
        assert!(ends_with_word("ledger.messages_matching(", "_matching("));
        assert!(ends_with_word("format!(", "format!("));
        assert!(!ends_with_word("my_format!(", "format!("));
    }

    #[test]
    fn phase_lint_flags_unregistered_and_accepts_registered() {
        let src = r#"
            fn f(net: &mut Network) {
                net.run("mstA.l0.exch", a, i).unwrap();
                net.run("mst_a.l0", a, i).unwrap();
                let name = format!("mstX.l{level}.exch");
                let fine = format!("recover.e{epoch}.census");
                let skip = format!("torus{side}x{side}");
                ledger.messages_matching("s2");
                ledger.messages_matching("zz.");
                net.obs_emit("recover.checkpoint", 3);
                net.obs_emit("chekpoint.resume", 3);
            }
        "#;
        let mut out = Vec::new();
        phase_lints("crates/core/src/x.rs", &lex(src), &mut out);
        let lines: Vec<usize> = out.iter().map(|v| v.line).collect();
        assert_eq!(lines, [4, 5, 9, 11], "violations: {out:#?}");
        assert!(out.iter().all(|v| v.rule == "phase-registry"));
    }

    #[test]
    fn unsafe_lint_allowlists_and_requires_safety() {
        let bad = "fn f() { unsafe { g(); } }";
        let mut out = Vec::new();
        unsafe_lints("crates/other/src/m.rs", bad, &lex(bad), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unsafe-allowlist");

        let missing = "fn f() {\n    unsafe { g(); }\n}";
        let mut out = Vec::new();
        unsafe_lints(
            "crates/congest/src/executor/cells.rs",
            missing,
            &lex(missing),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "safety-comment");

        let ok = "fn f() {\n    // SAFETY: g is safe here.\n    unsafe { g(); }\n}";
        let mut out = Vec::new();
        unsafe_lints(
            "crates/congest/src/executor/cells.rs",
            ok,
            &lex(ok),
            &mut out,
        );
        assert!(out.is_empty(), "{out:#?}");

        // Doc-comment `# Safety` sections and intervening attributes count.
        let doc = "/// Does things.\n///\n/// # Safety\n///\n/// Caller guarantees x.\n#[allow(clippy::mut_from_ref)]\npub unsafe fn g() {}";
        let mut out = Vec::new();
        unsafe_lints(
            "crates/congest/src/executor/cells.rs",
            doc,
            &lex(doc),
            &mut out,
        );
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn determinism_lint_bans_listed_words() {
        let src = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }";
        let mut out = Vec::new();
        determinism_lints("crates/congest/src/sim/x.rs", &lex(src), &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.rule == "determinism"));
    }

    #[test]
    fn pub_item_extraction_skips_impl_methods_and_restricted_vis() {
        let src = r#"
            pub struct Criterion { x: u32 }
            impl Criterion {
                pub fn benchmark_group(&mut self) -> BenchmarkGroup { todo!() }
            }
            pub(crate) struct Hidden;
            pub fn black_box<T>(t: T) -> T { t }
            pub trait Rng {
                fn gen(&mut self) -> u32;
            }
            macro_rules! criterion_group { () => {}; }
            macro_rules! gen_fn {
                ($g:ident) => { pub fn $g() { inner() } };
            }
            fn helper() -> impl Iterator<Item = u32> { std::iter::empty() }
            pub enum Kind { A }
        "#;
        let items = extract_pub_items(&lex(src));
        let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "Criterion",
                "black_box",
                "Rng",
                "criterion_group",
                "gen_fn",
                "Kind"
            ],
            "macro bodies must not leak template items: {items:#?}"
        );
    }

    #[test]
    fn readme_chunks_and_prefix_patterns() {
        let row = "| `proptest` | proptest 1 | `proptest!` over strategies, `prop_assert*`, `ProptestConfig::with_cases` |";
        let chunks = row_chunks(row);
        assert!(chunks.contains(&"proptest".to_string()));
        assert!(chunks.contains(&"prop_assert*".to_string()));
        assert!(chunks.contains(&"with_cases".to_string()));
        assert!(documented(&chunks[1..], "prop_assert_eq"));
        assert!(documented(&chunks[1..], "ProptestConfig"));
        assert!(!documented(&chunks[1..], "TestRng"));
    }
}
