//! End-to-end tests for the `congest_lint` binary: clean on the real
//! workspace, and every rule firing on the seeded fixture tree.

use std::path::Path;
use std::process::Command;

fn run_lint(root: &Path) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_congest_lint"))
        .arg("--root")
        .arg(root)
        .output()
        .expect("congest_lint runs");
    (
        out.status.code().expect("exit code"),
        String::from_utf8(out.stdout).expect("utf8 stdout"),
    )
}

#[test]
fn the_real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let (code, stdout) = run_lint(root);
    assert_eq!(code, 0, "violations:\n{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn the_fixture_tree_trips_every_rule() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_ws");
    let (code, stdout) = run_lint(&root);
    assert_eq!(code, 1, "must fail on the fixture tree:\n{stdout}");

    let count = |rule: &str| {
        stdout
            .lines()
            .filter(|l| l.contains(&format!("[{rule}]")))
            .count()
    };
    assert_eq!(count("unsafe-allowlist"), 1, "{stdout}");
    assert_eq!(count("safety-comment"), 1, "{stdout}");
    assert_eq!(count("phase-registry"), 7, "{stdout}");
    assert_eq!(count("determinism"), 5, "{stdout}");
    assert_eq!(count("stub-drift"), 3, "{stdout}");
    assert!(stdout.contains("17 violation(s)"), "{stdout}");

    // Findings are sorted by (file, line) — stable output for CI diffing.
    let locs: Vec<(&str, usize)> = stdout
        .lines()
        .filter(|l| l.contains(": ["))
        .map(|l| {
            let mut parts = l.splitn(3, ':');
            let file = parts.next().unwrap();
            let line = parts.next().unwrap().parse().unwrap();
            (file, line)
        })
        .collect();
    let mut sorted = locs.clone();
    sorted.sort();
    assert_eq!(locs, sorted);
}

#[test]
fn unknown_arguments_are_usage_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_congest_lint"))
        .arg("--frobnicate")
        .output()
        .expect("congest_lint runs");
    assert_eq!(out.status.code(), Some(2));
}
