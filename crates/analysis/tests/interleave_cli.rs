//! Smoke test for the `interleave_check` binary: all scenarios run to
//! completion and the falsification scenario reports counterexamples.

use std::process::Command;

#[test]
fn interleave_check_passes_and_reports_the_falsification() {
    let out = Command::new(env!("CARGO_BIN_EXE_interleave_check"))
        .output()
        .expect("interleave_check runs");
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("5 scenario(s) passed"), "{stdout}");
    assert!(stdout.contains("falsified"), "{stdout}");
}
