//! Fixture: `unsafe` outside the executor-core allowlist. The SAFETY
//! comment does not save it — the *location* is the violation.

pub fn touch(p: *mut u32) {
    // SAFETY: p is valid — but this file is not allowlisted.
    unsafe {
        *p = 1;
    }
}

pub fn use_widget() -> u32 {
    widget_fn()
}
