//! Fixture stub: exports `widget_fn` (consumed by `crates/other`) but
//! the README row documents a `ghost_item` that does not exist.

pub fn widget_fn() -> u32 {
    7
}
