//! Fixture: phase-name literals that violate the registry contract.

pub fn drive(net: &mut Network, ledger: &Ledger) {
    net.run("bogus_stem.x", Alg, inputs).unwrap();
    let _name = format!("nope.l{level}.exch");
    let _n = ledger.messages_matching("zzz");
    // A fused sub-phase under a typo'd phase-A stem: `mstA` is
    // registered, `mstA2` is not — the lint must catch the stem even
    // through the format! level interpolation.
    let _cd = format!("mstA2.l{level}.cd");
}
