//! Fixture: phase-name literals that violate the registry contract.

pub fn drive(net: &mut Network, ledger: &Ledger) {
    net.run("bogus_stem.x", Alg, inputs).unwrap();
    let _name = format!("nope.l{level}.exch");
    let _n = ledger.messages_matching("zzz");
}
