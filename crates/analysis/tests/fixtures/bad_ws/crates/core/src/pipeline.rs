//! Fixture: phase-name literals that violate the registry contract.

pub fn drive(net: &mut Network, ledger: &Ledger) {
    net.run("bogus_stem.x", Alg, inputs).unwrap();
    let _name = format!("nope.l{level}.exch");
    let _n = ledger.messages_matching("zzz");
    // A fused sub-phase under a typo'd phase-A stem: `mstA` is
    // registered, `mstA2` is not — the lint must catch the stem even
    // through the format! level interpolation.
    let _cd = format!("mstA2.l{level}.cd");
    // Recovery stems: `census` is registered, the typo'd `cenzus` is
    // not — caught through the epoch/pass interpolation like `mstA2`.
    let _census = format!("cenzus.e{epoch}.r{pass}");
    // Ledger scans must query registered stems too: `recover.` matches
    // the recovery prefix, the typo'd `rezume.` matches nothing ever.
    let _scan = ledger.rounds_matching("rezume.");
    // Obs stage markers share the registry: `bogus_evt` is no stem.
    net.obs_emit("bogus_evt.checkpoint", 0);
}
