//! Fixture: nondeterminism primitives in a replay-exact path.

use std::collections::HashMap;

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn table() -> HashMap<u8, u8> {
    HashMap::new()
}
