//! Fixture: an allowlisted path whose `unsafe` lacks a SAFETY comment.

pub fn poke(p: *mut u32) {
    unsafe {
        *p = 2;
    }
}
