//! Offline stand-in for `serde`: marker traits plus no-op derive macros.
//!
//! The workspace derives `serde::Serialize`/`serde::Deserialize` on its id
//! types to declare intent (and to keep the door open for real
//! serialization once the environment has registry access), but nothing
//! actually serializes — so the traits are inert markers here. See
//! `crates/stubs/README.md`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize {}
