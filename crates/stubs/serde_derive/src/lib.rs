//! No-op `Serialize`/`Deserialize` derives for the offline `serde`
//! stand-in: the workspace only *tags* types as serializable (no code
//! actually serializes), so the derives expand to marker-trait impls.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier following `struct`/`enum` in the derive input.
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return Some(s);
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    None
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    match type_name(input) {
        // Generic types never occur among the workspace's derives; a
        // plain impl suffices.
        Some(name) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .expect("valid impl tokens"),
        None => TokenStream::new(),
    }
}

/// Marker derive for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// Marker derive for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize")
}
