//! Offline stand-in for `criterion` (API-compatible subset).
//!
//! Keeps the bench targets compiling and lets `cargo bench` smoke-run
//! every benchmark body exactly once (no statistics). See
//! `crates/stubs/README.md`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::marker::PhantomData;

/// The bench registry/driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: PhantomData,
        }
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is not configurable here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` once with a [`Bencher`] and the input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("bench {}/{}: smoke run", self.name, id.label);
        let mut b = Bencher;
        f(&mut b, input);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Runs the measured closure.
pub struct Bencher;

impl Bencher {
    /// Executes the closure once (a smoke run, not a measurement).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = f();
    }
}

/// A benchmark's display label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Prevents the compiler from optimising a value away (best effort
/// without `std::hint::black_box` tricks; identity is fine for smoke
/// runs).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut ran = 0;
        group.bench_with_input(BenchmarkId::new("case", 1), &41, |b, &x| {
            b.iter(|| {
                ran += 1;
                black_box(x + 1)
            })
        });
        group.finish();
        assert_eq!(ran, 1);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_each_body_once() {
        benches();
    }
}
