//! Offline stand-in for `proptest` (API-compatible subset).
//!
//! Supports what the workspace's property tests use: the [`proptest!`]
//! macro with a `#![proptest_config(...)]` header, integer-range
//! strategies (`0u64..5000`, `6usize..40`, …), and the `prop_assert*`
//! macros. Each property runs `cases` deterministic iterations seeded
//! from the property's name — no shrinking, but failures print the drawn
//! values via the assertion message. See `crates/stubs/README.md`.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Per-block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic case generator handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next 64 pseudo-random bits (splitmix64 stream).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a hash of a string — stable per-property seeds.
pub fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A value source for one macro argument.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws the value for one case.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Property-test macro: runs each body for `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::fnv(stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::pick(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// `prop_assert!` — panics like `assert!` (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — panics like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — panics like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        fnv, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..19, b in 1usize..5) {
            prop_assert!((3..19).contains(&a));
            prop_assert!((1..5).contains(&b));
        }
    }

    proptest! {
        #[test]
        fn default_config_arm_works(x in 0u32..10) {
            prop_assert_ne!(x, 10);
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn draws_are_deterministic_per_name() {
        let mut a = TestRng::new(fnv("some_property"));
        let mut b = TestRng::new(fnv("some_property"));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn draws_vary_across_cases() {
        let mut rng = TestRng::new(fnv("p"));
        let s = 0u64..1000;
        let vals: Vec<u64> = (0..20).map(|_| Strategy::pick(&s, &mut rng)).collect();
        assert!(vals.windows(2).any(|w| w[0] != w[1]));
    }
}
