//! Offline stand-in for the `rand` crate (API-compatible subset).
//!
//! Provides exactly the surface this workspace uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods `gen`, `gen_range`, `gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256\*\* (public
//! domain reference constants) expanded from the seed with splitmix64 —
//! deterministic, fast, and statistically solid for test-instance
//! generation. See `crates/stubs/README.md` for the rationale.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value uniformly sampleable from a range.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64, isize);

impl SampleRange<u128> for Range<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = self.end - self.start;
        let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        self.start + draw % span
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Types drawable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A uniform `f64` in `[0, 1)` from 53 random mantissa bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Convenience extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A coin that lands `true` with probability `p` (`p ≥ 1` is always
    /// `true`, `p ≤ 0` never).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// A draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers.
pub mod seq {
    use super::RngCore;

    /// In-place uniform shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256\*\*.
    ///
    /// Note: upstream `rand`'s `StdRng` is ChaCha12; the streams differ,
    /// so seeded instances are reproducible *within* this workspace but
    /// not bit-identical to upstream-generated ones.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            StdRng {
                s: [
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let z = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes_and_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not stay in order");
    }
}
