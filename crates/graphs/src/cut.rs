//! Cut evaluation: given one side of a bipartition, compute the total weight
//! of crossing edges.

use crate::{NodeId, Weight, WeightedGraph};

/// A cut: one side of the bipartition plus its value.
///
/// `side[v] == true` means node `v` is in the set `X`; the value is
/// `C(X) = Σ_{(x,y)∈E, x∈X, y∉X} w(x, y)` as defined in the paper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CutResult {
    /// Membership bitmap of the side `X`.
    pub side: Vec<bool>,
    /// The cut value `C(X)`.
    pub value: Weight,
}

impl CutResult {
    /// Number of nodes in `X`.
    pub fn side_size(&self) -> usize {
        self.side.iter().filter(|&&b| b).count()
    }

    /// Returns `true` if the cut is proper: both sides are non-empty.
    pub fn is_proper(&self) -> bool {
        let k = self.side_size();
        k > 0 && k < self.side.len()
    }

    /// Returns the side containing fewer nodes as a list of node ids
    /// (ties go to the `true` side).
    pub fn smaller_side(&self) -> Vec<NodeId> {
        let k = self.side_size();
        let want = k * 2 <= self.side.len();
        self.side
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b == want)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }
}

/// Computes the value of the cut defined by `side` (`true` = in `X`).
///
/// # Panics
///
/// Panics if `side.len() != g.node_count()`.
pub fn cut_of_side(g: &WeightedGraph, side: &[bool]) -> Weight {
    assert_eq!(
        side.len(),
        g.node_count(),
        "side bitmap length must equal node count"
    );
    let mut total: Weight = 0;
    for (_, u, v, w) in g.edge_tuples() {
        if side[u.index()] != side[v.index()] {
            total += w;
        }
    }
    total
}

/// Builds a [`CutResult`] from a side bitmap, computing the value.
///
/// # Panics
///
/// Panics if `side.len() != g.node_count()`.
pub fn cut_result(g: &WeightedGraph, side: Vec<bool>) -> CutResult {
    let value = cut_of_side(g, &side);
    CutResult { side, value }
}

/// Builds a [`CutResult`] whose side `X` is the given node set.
///
/// # Panics
///
/// Panics if any node is out of range.
pub fn cut_of_set(g: &WeightedGraph, set: &[NodeId]) -> CutResult {
    let mut side = vec![false; g.node_count()];
    for &v in set {
        side[v.index()] = true;
    }
    cut_result(g, side)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeightedGraph;

    fn square() -> WeightedGraph {
        // 0-1 (1), 1-2 (2), 2-3 (3), 3-0 (4), diagonal 0-2 (10)
        WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4), (0, 2, 10)])
            .unwrap()
    }

    #[test]
    fn singleton_cut_equals_weighted_degree() {
        let g = square();
        for v in g.nodes() {
            let mut side = vec![false; 4];
            side[v.index()] = true;
            assert_eq!(cut_of_side(&g, &side), g.weighted_degree(v));
        }
    }

    #[test]
    fn complement_has_same_value() {
        let g = square();
        let side = vec![true, true, false, false];
        let comp: Vec<bool> = side.iter().map(|b| !b).collect();
        assert_eq!(cut_of_side(&g, &side), cut_of_side(&g, &comp));
    }

    #[test]
    fn whole_graph_cut_is_zero() {
        let g = square();
        assert_eq!(cut_of_side(&g, &[true; 4]), 0);
        assert_eq!(cut_of_side(&g, &[false; 4]), 0);
    }

    #[test]
    fn cut_result_helpers() {
        let g = square();
        let r = cut_of_set(&g, &[NodeId::new(1)]);
        assert_eq!(r.value, 3);
        assert!(r.is_proper());
        assert_eq!(r.side_size(), 1);
        assert_eq!(r.smaller_side(), vec![NodeId::new(1)]);

        let empty = cut_of_set(&g, &[]);
        assert!(!empty.is_proper());
    }

    #[test]
    #[should_panic(expected = "side bitmap length")]
    fn wrong_length_panics() {
        let g = square();
        let _ = cut_of_side(&g, &[true, false]);
    }
}
