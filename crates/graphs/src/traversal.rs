//! Breadth-first / depth-first traversals, connectivity, and diameter.

use crate::{NodeId, WeightedGraph};
use std::collections::VecDeque;

/// Result of a single-source BFS: hop distances and BFS-tree parents.
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// `dist[v]` is the hop distance from the source, or `u32::MAX` if
    /// unreachable.
    pub dist: Vec<u32>,
    /// `parent[v]` is the BFS-tree parent, or `None` for the source and
    /// unreachable nodes.
    pub parent: Vec<Option<NodeId>>,
    /// Nodes in visit order (the source first).
    pub order: Vec<NodeId>,
}

/// Runs BFS from `src` over unit-length edges (hop counts).
pub fn bfs(g: &WeightedGraph, src: NodeId) -> BfsResult {
    let n = g.node_count();
    let mut dist = vec![u32::MAX; n];
    let mut parent = vec![None; n];
    let mut order = Vec::with_capacity(n);
    let mut q = VecDeque::new();
    dist[src.index()] = 0;
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        order.push(v);
        for a in g.neighbors(v) {
            let u = a.neighbor;
            if dist[u.index()] == u32::MAX {
                dist[u.index()] = dist[v.index()] + 1;
                parent[u.index()] = Some(v);
                q.push_back(u);
            }
        }
    }
    BfsResult {
        dist,
        parent,
        order,
    }
}

/// Returns `true` if the graph is connected (the empty graph counts as
/// connected, the one-node graph too).
pub fn is_connected(g: &WeightedGraph) -> bool {
    if g.node_count() <= 1 {
        return true;
    }
    let r = bfs(g, NodeId::new(0));
    r.order.len() == g.node_count()
}

/// Labels connected components; returns `(labels, component_count)` where
/// `labels[v]` is in `0..component_count` and components are numbered by
/// their smallest node.
pub fn connected_components(g: &WeightedGraph) -> (Vec<u32>, usize) {
    let n = g.node_count();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    for s in 0..n {
        if label[s] != u32::MAX {
            continue;
        }
        let mut q = VecDeque::new();
        label[s] = count;
        q.push_back(NodeId::from_index(s));
        while let Some(v) = q.pop_front() {
            for a in g.neighbors(v) {
                if label[a.neighbor.index()] == u32::MAX {
                    label[a.neighbor.index()] = count;
                    q.push_back(a.neighbor);
                }
            }
        }
        count += 1;
    }
    (label, count as usize)
}

/// Exact eccentricity of `v`: the maximum hop distance to any reachable node.
pub fn eccentricity(g: &WeightedGraph, v: NodeId) -> u32 {
    bfs(g, v)
        .dist
        .iter()
        .copied()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0)
}

/// Exact (hop) diameter by running BFS from every node: `O(n·m)`.
///
/// Returns 0 for graphs with fewer than two nodes. For disconnected graphs
/// the result is the maximum finite distance (diameter of the largest
/// eccentricity among components).
pub fn exact_diameter(g: &WeightedGraph) -> u32 {
    g.nodes().map(|v| eccentricity(g, v)).max().unwrap_or(0)
}

/// Lower-bound diameter estimate by the classic double-sweep: BFS from an
/// arbitrary node, then BFS from the farthest node found. Exact on trees;
/// a lower bound in general. `O(m)`.
pub fn two_sweep_diameter(g: &WeightedGraph) -> u32 {
    if g.node_count() == 0 {
        return 0;
    }
    let first = bfs(g, NodeId::new(0));
    let far = first
        .order
        .iter()
        .copied()
        .max_by_key(|v| first.dist[v.index()])
        .unwrap_or(NodeId::new(0));
    eccentricity(g, far)
}

/// DFS preorder and postorder from `src` (iterative, stack-based).
#[derive(Clone, Debug)]
pub struct DfsResult {
    /// Nodes in preorder.
    pub preorder: Vec<NodeId>,
    /// Nodes in postorder.
    pub postorder: Vec<NodeId>,
    /// `parent[v]` in the DFS tree (None for the source and unvisited nodes).
    pub parent: Vec<Option<NodeId>>,
}

/// Runs an iterative DFS from `src`.
pub fn dfs(g: &WeightedGraph, src: NodeId) -> DfsResult {
    let n = g.node_count();
    let mut parent = vec![None; n];
    let mut visited = vec![false; n];
    let mut preorder = Vec::new();
    let mut postorder = Vec::new();
    // Stack of (node, next neighbor index to try).
    let mut stack: Vec<(NodeId, usize)> = vec![(src, 0)];
    visited[src.index()] = true;
    preorder.push(src);
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        let adj = g.neighbors(v);
        if *i < adj.len() {
            let u = adj[*i].neighbor;
            *i += 1;
            if !visited[u.index()] {
                visited[u.index()] = true;
                parent[u.index()] = Some(v);
                preorder.push(u);
                stack.push((u, 0));
            }
        } else {
            postorder.push(v);
            stack.pop();
        }
    }
    DfsResult {
        preorder,
        postorder,
        parent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeightedGraph;

    fn path(n: usize) -> WeightedGraph {
        WeightedGraph::from_edges(n, (0..n - 1).map(|i| (i as u32, i as u32 + 1, 1))).unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        let r = bfs(&g, NodeId::new(0));
        assert_eq!(r.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.parent[3], Some(NodeId::new(2)));
        assert_eq!(r.order.len(), 5);
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&path(4)));
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (2, 3, 1)]).unwrap();
        assert!(!is_connected(&g));
        let (labels, c) = connected_components(&g);
        assert_eq!(c, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn diameters() {
        let g = path(7);
        assert_eq!(exact_diameter(&g), 6);
        assert_eq!(two_sweep_diameter(&g), 6);
        let cycle =
            WeightedGraph::from_edges(6, (0..6).map(|i| (i as u32, ((i + 1) % 6) as u32, 1)))
                .unwrap();
        assert_eq!(exact_diameter(&cycle), 3);
        assert!(two_sweep_diameter(&cycle) <= 3);
    }

    #[test]
    fn single_node_graph() {
        let g = WeightedGraph::from_edges(1, []).unwrap();
        assert!(is_connected(&g));
        assert_eq!(exact_diameter(&g), 0);
        assert_eq!(two_sweep_diameter(&g), 0);
    }

    #[test]
    fn dfs_visits_all_reachable() {
        let g = path(6);
        let r = dfs(&g, NodeId::new(0));
        assert_eq!(r.preorder.len(), 6);
        assert_eq!(r.postorder.len(), 6);
        // On a path from node 0, preorder is the path order and postorder is
        // its reverse.
        assert_eq!(r.preorder.first(), Some(&NodeId::new(0)));
        assert_eq!(r.postorder.last(), Some(&NodeId::new(0)));
        assert_eq!(r.parent[5], Some(NodeId::new(4)));
    }

    #[test]
    fn eccentricity_of_center() {
        // Star: center 0 has eccentricity 1, leaves 2.
        let g = WeightedGraph::from_edges(5, (1..5).map(|i| (0, i as u32, 1))).unwrap();
        assert_eq!(eccentricity(&g, NodeId::new(0)), 1);
        assert_eq!(eccentricity(&g, NodeId::new(3)), 2);
        assert_eq!(exact_diameter(&g), 2);
    }
}
