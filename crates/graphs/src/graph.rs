//! The core graph type: a simple, undirected, integer-weighted graph in CSR
//! form, plus the builder that constructs and validates it.

use crate::{EdgeId, NodeId, Weight};
use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge had both endpoints equal; simple graphs have no self loops.
    SelfLoop {
        /// The offending node.
        node: NodeId,
    },
    /// An endpoint index was not smaller than the declared node count.
    NodeOutOfRange {
        /// The offending endpoint index.
        node: u32,
        /// The declared node count.
        node_count: usize,
    },
    /// An edge was given weight zero; zero-weight edges are disallowed
    /// because they make "minimum cut" degenerate (a zero cut would always
    /// win) and carry no information.
    ZeroWeight {
        /// First endpoint of the offending edge.
        u: NodeId,
        /// Second endpoint of the offending edge.
        v: NodeId,
    },
    /// The graph would have more than `u32::MAX` edges after merging.
    TooManyEdges,
    /// A parse error from the text format in [`crate::io`].
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop { node } => write!(f, "self loop at node {node}"),
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node index {node} out of range for {node_count} nodes")
            }
            GraphError::ZeroWeight { u, v } => {
                write!(f, "zero-weight edge between {u} and {v}")
            }
            GraphError::TooManyEdges => write!(f, "graph exceeds u32::MAX edges"),
            GraphError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

/// One entry of a node's adjacency list.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AdjEntry {
    /// The neighbor on the other side of the edge.
    pub neighbor: NodeId,
    /// The identifier of the connecting edge.
    pub edge: EdgeId,
    /// The weight of the connecting edge.
    pub weight: Weight,
}

/// A simple, undirected, integer-weighted graph in CSR form.
///
/// Nodes are `0..node_count()`, edges are `0..edge_count()`. Parallel edges
/// supplied to the builder are merged by summing their weights (for cuts,
/// parallel edges and summed weights are interchangeable); self loops are
/// rejected.
///
/// Adjacency lists are sorted by neighbor index, which makes
/// [`WeightedGraph::edge_between`] a binary search and iteration
/// deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedGraph {
    node_count: usize,
    /// Canonicalised edges: `endpoints[e] = (u, v)` with `u < v`.
    endpoints: Vec<(NodeId, NodeId)>,
    weights: Vec<Weight>,
    /// CSR offsets: adjacency of node `v` is `adj[offsets[v]..offsets[v+1]]`.
    offsets: Vec<u32>,
    adj: Vec<AdjEntry>,
    weighted_degrees: Vec<Weight>,
}

impl WeightedGraph {
    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of (merged, undirected) edges `m`.
    pub fn edge_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Iterator over all node identifiers in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count as u32).map(NodeId::new)
    }

    /// Iterator over all edge identifiers in increasing order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.endpoints.len() as u32).map(EdgeId::new)
    }

    /// Endpoints `(u, v)` of edge `e`, with `u < v`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.endpoints[e.index()]
    }

    /// Weight of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn weight(&self, e: EdgeId) -> Weight {
        self.weights[e.index()]
    }

    /// Given edge `e` and one endpoint `v`, returns the other endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.endpoints(e);
        if v == a {
            b
        } else if v == b {
            a
        } else {
            panic!("{v} is not an endpoint of {e}")
        }
    }

    /// The adjacency list of `v`, sorted by neighbor index.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[AdjEntry] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Unweighted degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Weighted degree `δ(v) = Σ_u w(u, v)` of `v`.
    pub fn weighted_degree(&self, v: NodeId) -> Weight {
        self.weighted_degrees[v.index()]
    }

    /// Total weight `Σ_e w(e)` over all edges.
    pub fn total_weight(&self) -> Weight {
        self.weights.iter().sum()
    }

    /// Looks up the edge between `u` and `v`, if any (binary search).
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let list = self.neighbors(u);
        list.binary_search_by_key(&v, |a| a.neighbor)
            .ok()
            .map(|i| list[i].edge)
    }

    /// Iterator over `(EdgeId, u, v, w)` for all edges.
    pub fn edge_tuples(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, Weight)> + '_ {
        self.endpoints
            .iter()
            .zip(self.weights.iter())
            .enumerate()
            .map(|(i, (&(u, v), &w))| (EdgeId::from_index(i), u, v, w))
    }

    /// Maximum edge weight, or 0 for an edgeless graph.
    pub fn max_weight(&self) -> Weight {
        self.weights.iter().copied().max().unwrap_or(0)
    }

    /// Minimum weighted degree over all nodes; an upper bound on the minimum
    /// cut (a singleton is always a cut). Returns `None` for the empty graph.
    pub fn min_weighted_degree(&self) -> Option<Weight> {
        self.weighted_degrees.iter().copied().min()
    }
}

/// Incremental builder for [`WeightedGraph`].
///
/// Edges may be added in any order; parallel edges are merged by summing
/// weights at [`GraphBuilder::build`] time.
///
/// # Example
///
/// ```
/// use graphs::GraphBuilder;
///
/// # fn main() -> Result<(), graphs::GraphError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 1);
/// b.add_edge(1, 0, 2); // parallel: merged into weight 3
/// b.add_edge(1, 2, 5);
/// let g = b.build()?;
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.weight(graphs::EdgeId::new(0)), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    node_count: usize,
    raw_edges: Vec<(u32, u32, Weight)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `node_count` nodes and no edges yet.
    pub fn new(node_count: usize) -> Self {
        GraphBuilder {
            node_count,
            raw_edges: Vec::new(),
        }
    }

    /// Number of nodes the graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of raw (unmerged) edges added so far.
    pub fn raw_edge_count(&self) -> usize {
        self.raw_edges.len()
    }

    /// Adds an undirected edge `{u, v}` with weight `w`.
    ///
    /// Validation (range checks, self loops, zero weights) happens in
    /// [`GraphBuilder::build`], so this never fails and is cheap.
    pub fn add_edge(&mut self, u: u32, v: u32, w: Weight) -> &mut Self {
        self.raw_edges.push((u, v, w));
        self
    }

    /// Adds every edge from an iterator of `(u, v, w)` triples.
    pub fn extend_edges<I: IntoIterator<Item = (u32, u32, Weight)>>(&mut self, it: I) -> &mut Self {
        self.raw_edges.extend(it);
        self
    }

    /// Validates and constructs the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if any endpoint is out of range, any edge is a
    /// self loop or has weight zero, or the merged edge count overflows.
    pub fn build(&self) -> Result<WeightedGraph, GraphError> {
        let n = self.node_count;
        let mut canon: Vec<(u32, u32, Weight)> = Vec::with_capacity(self.raw_edges.len());
        for &(u, v, w) in &self.raw_edges {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: u,
                    node_count: n,
                });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: v,
                    node_count: n,
                });
            }
            if u == v {
                return Err(GraphError::SelfLoop {
                    node: NodeId::new(u),
                });
            }
            if w == 0 {
                return Err(GraphError::ZeroWeight {
                    u: NodeId::new(u),
                    v: NodeId::new(v),
                });
            }
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            canon.push((a, b, w));
        }
        canon.sort_unstable_by_key(|&(a, b, _)| (a, b));

        // Merge parallel edges by summing weights.
        let mut endpoints: Vec<(NodeId, NodeId)> = Vec::new();
        let mut weights: Vec<Weight> = Vec::new();
        for (a, b, w) in canon {
            if let (Some(&(pa, pb)), Some(last_w)) = (endpoints.last(), weights.last_mut()) {
                if pa.raw() == a && pb.raw() == b {
                    *last_w = last_w.checked_add(w).ok_or(GraphError::TooManyEdges)?;
                    continue;
                }
            }
            endpoints.push((NodeId::new(a), NodeId::new(b)));
            weights.push(w);
        }
        if endpoints.len() > u32::MAX as usize {
            return Err(GraphError::TooManyEdges);
        }

        // Build CSR.
        let mut degrees = vec![0u32; n];
        for &(u, v) in &endpoints {
            degrees[u.index()] += 1;
            degrees[v.index()] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degrees[i];
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![
            AdjEntry {
                neighbor: NodeId::new(0),
                edge: EdgeId::new(0),
                weight: 0,
            };
            endpoints.len() * 2
        ];
        for (i, (&(u, v), &w)) in endpoints.iter().zip(weights.iter()).enumerate() {
            let e = EdgeId::from_index(i);
            adj[cursor[u.index()] as usize] = AdjEntry {
                neighbor: v,
                edge: e,
                weight: w,
            };
            cursor[u.index()] += 1;
            adj[cursor[v.index()] as usize] = AdjEntry {
                neighbor: u,
                edge: e,
                weight: w,
            };
            cursor[v.index()] += 1;
        }
        // Edges were sorted by (u, v); within each node's slice neighbors of
        // lower index come first for the "u" side, but the "v" side entries
        // arrive in order of u, which is also sorted. Since both passes
        // interleave, sort each slice to guarantee order.
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            adj[lo..hi].sort_unstable_by_key(|a| a.neighbor);
        }
        let weighted_degrees = (0..n)
            .map(|v| {
                adj[offsets[v] as usize..offsets[v + 1] as usize]
                    .iter()
                    .map(|a| a.weight)
                    .sum()
            })
            .collect();

        Ok(WeightedGraph {
            node_count: n,
            endpoints,
            weights,
            offsets,
            adj,
            weighted_degrees,
        })
    }
}

impl WeightedGraph {
    /// Builds a graph directly from `(u, v, w)` triples.
    ///
    /// # Errors
    ///
    /// Same as [`GraphBuilder::build`].
    pub fn from_edges<I>(node_count: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (u32, u32, Weight)>,
    {
        let mut b = GraphBuilder::new(node_count);
        b.extend_edges(edges);
        b.build()
    }

    /// Assembles a graph from raw CSR parts **without validation** — the
    /// adjacency is *not* checked for symmetry or consistency with
    /// `endpoints`. This deliberately permits malformed graphs so that
    /// consumers (e.g. the CONGEST engine's symmetry check) can test
    /// their defenses against them; every validated path goes through
    /// [`GraphBuilder::build`].
    #[doc(hidden)]
    pub fn from_raw_parts(
        node_count: usize,
        endpoints: Vec<(NodeId, NodeId)>,
        weights: Vec<Weight>,
        offsets: Vec<u32>,
        adj: Vec<AdjEntry>,
    ) -> Self {
        assert_eq!(
            offsets.len(),
            node_count + 1,
            "offsets must cover all nodes"
        );
        assert_eq!(
            *offsets.last().expect("offsets non-empty") as usize,
            adj.len(),
            "offsets must cover the adjacency"
        );
        let weighted_degrees = (0..node_count)
            .map(|v| {
                adj[offsets[v] as usize..offsets[v + 1] as usize]
                    .iter()
                    .map(|a| a.weight)
                    .sum()
            })
            .collect();
        WeightedGraph {
            node_count,
            endpoints,
            weights,
            offsets,
            adj,
            weighted_degrees,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> WeightedGraph {
        WeightedGraph::from_edges(3, [(0, 1, 1), (1, 2, 2), (0, 2, 3)]).unwrap()
    }

    #[test]
    fn builds_triangle() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.total_weight(), 6);
        assert_eq!(g.weighted_degree(NodeId::new(0)), 4);
        assert_eq!(g.weighted_degree(NodeId::new(1)), 3);
        assert_eq!(g.weighted_degree(NodeId::new(2)), 5);
        assert_eq!(g.min_weighted_degree(), Some(3));
    }

    #[test]
    fn rejects_self_loop() {
        let err = WeightedGraph::from_edges(2, [(1, 1, 1)]).unwrap_err();
        assert_eq!(
            err,
            GraphError::SelfLoop {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let err = WeightedGraph::from_edges(2, [(0, 5, 1)]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 5, .. }));
    }

    #[test]
    fn rejects_zero_weight() {
        let err = WeightedGraph::from_edges(2, [(0, 1, 0)]).unwrap_err();
        assert!(matches!(err, GraphError::ZeroWeight { .. }));
    }

    #[test]
    fn merges_parallel_edges() {
        let g = WeightedGraph::from_edges(2, [(0, 1, 1), (1, 0, 4)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.weight(EdgeId::new(0)), 5);
    }

    #[test]
    fn adjacency_sorted_and_consistent() {
        let g = WeightedGraph::from_edges(5, [(4, 0, 1), (2, 0, 1), (0, 1, 1), (3, 0, 1)]).unwrap();
        let ns: Vec<u32> = g
            .neighbors(NodeId::new(0))
            .iter()
            .map(|a| a.neighbor.raw())
            .collect();
        assert_eq!(ns, vec![1, 2, 3, 4]);
        for v in g.nodes() {
            for a in g.neighbors(v) {
                assert_eq!(g.other_endpoint(a.edge, v), a.neighbor);
                assert_eq!(g.weight(a.edge), a.weight);
            }
        }
    }

    #[test]
    fn edge_between_works() {
        let g = triangle();
        assert!(g.edge_between(NodeId::new(0), NodeId::new(2)).is_some());
        let g2 = WeightedGraph::from_edges(4, [(0, 1, 1), (2, 3, 1)]).unwrap();
        assert!(g2.edge_between(NodeId::new(0), NodeId::new(3)).is_none());
    }

    #[test]
    fn endpoints_are_canonical() {
        let g = WeightedGraph::from_edges(3, [(2, 1, 7)]).unwrap();
        let (u, v) = g.endpoints(EdgeId::new(0));
        assert!(u < v);
        assert_eq!((u.raw(), v.raw()), (1, 2));
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = WeightedGraph::from_edges(0, []).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.min_weighted_degree(), None);
        assert_eq!(g.max_weight(), 0);
    }

    #[test]
    fn other_endpoint_panics_for_non_endpoint() {
        let g = triangle();
        let result = std::panic::catch_unwind(|| {
            let e = g.edge_between(NodeId::new(0), NodeId::new(1)).unwrap();
            g.other_endpoint(e, NodeId::new(2))
        });
        assert!(result.is_err());
    }
}
