//! Random graph families: Erdős–Rényi and random geometric graphs.

use super::{connect_components, invalid, GeneratorError};
use crate::{Weight, WeightedGraph};
use rand::Rng;

/// Erdős–Rényi `G(n, p)` with unit weights. Not necessarily connected.
///
/// # Errors
///
/// Fails if `n == 0` or `p` is not in `[0, 1]`.
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, rng: &mut R) -> Result<WeightedGraph, GeneratorError> {
    if n == 0 {
        return Err(invalid("G(n, p) requires n ≥ 1"));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(invalid("p must be in [0, 1]"));
    }
    let mut edges = Vec::new();
    sample_gnp_edges(n, p, rng, &mut edges);
    Ok(WeightedGraph::from_edges(n, edges)?)
}

/// Erdős–Rényi `G(n, p)` made connected by linking leftover components with
/// random unit edges. Unit weights.
///
/// # Errors
///
/// Same as [`erdos_renyi`].
pub fn erdos_renyi_connected<R: Rng>(
    n: usize,
    p: f64,
    rng: &mut R,
) -> Result<WeightedGraph, GeneratorError> {
    if n == 0 {
        return Err(invalid("G(n, p) requires n ≥ 1"));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(invalid("p must be in [0, 1]"));
    }
    let mut edges = Vec::new();
    sample_gnp_edges(n, p, rng, &mut edges);
    connect_components(n, &mut edges, rng);
    Ok(WeightedGraph::from_edges(n, edges)?)
}

/// `G(n, m)`-style random graph with exactly `m` distinct edges (before the
/// connectivity patch) plus whatever the connectivity patch adds; unit
/// weights.
///
/// # Errors
///
/// Fails if `m` exceeds `n·(n−1)/2` or `n == 0`.
pub fn gnm_connected<R: Rng>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<WeightedGraph, GeneratorError> {
    if n == 0 {
        return Err(invalid("G(n, m) requires n ≥ 1"));
    }
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > max_m {
        return Err(invalid(format!("m = {m} exceeds max {max_m}")));
    }
    let mut set = std::collections::HashSet::with_capacity(m);
    let mut edges: Vec<(u32, u32, Weight)> = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if set.insert(key) {
            edges.push((key.0, key.1, 1));
        }
    }
    connect_components(n, &mut edges, rng);
    Ok(WeightedGraph::from_edges(n, edges)?)
}

/// Random geometric graph: `n` points uniform in the unit square, an edge
/// between points at Euclidean distance `< radius`, then patched to be
/// connected. Unit weights. Models wireless/ad-hoc networks — the paper's
/// motivating setting of communication networks.
///
/// # Errors
///
/// Fails if `n == 0` or `radius` is not positive.
pub fn random_geometric<R: Rng>(
    n: usize,
    radius: f64,
    rng: &mut R,
) -> Result<WeightedGraph, GeneratorError> {
    if n == 0 {
        return Err(invalid("geometric graph requires n ≥ 1"));
    }
    if radius <= 0.0 {
        return Err(invalid("radius must be positive"));
    }
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    // Grid hashing for near-linear neighbor search.
    let cell = radius.max(1e-9);
    let cells_per_side = (1.0 / cell).ceil().max(1.0) as i64;
    let key = |x: f64, y: f64| -> (i64, i64) {
        (
            ((x / cell) as i64).min(cells_per_side - 1),
            ((y / cell) as i64).min(cells_per_side - 1),
        )
    };
    let mut buckets: std::collections::HashMap<(i64, i64), Vec<u32>> =
        std::collections::HashMap::new();
    for (i, &(x, y)) in pts.iter().enumerate() {
        buckets.entry(key(x, y)).or_default().push(i as u32);
    }
    let r2 = radius * radius;
    let mut edges = Vec::new();
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = key(x, y);
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(list) = buckets.get(&(cx + dx, cy + dy)) {
                    for &j in list {
                        if (j as usize) > i {
                            let (px, py) = pts[j as usize];
                            let (ddx, ddy) = (px - x, py - y);
                            if ddx * ddx + ddy * ddy < r2 {
                                edges.push((i as u32, j, 1));
                            }
                        }
                    }
                }
            }
        }
    }
    connect_components(n, &mut edges, rng);
    Ok(WeightedGraph::from_edges(n, edges)?)
}

fn sample_gnp_edges<R: Rng>(n: usize, p: f64, rng: &mut R, edges: &mut Vec<(u32, u32, Weight)>) {
    if p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u as u32, v as u32, 1));
            }
        }
        return;
    }
    // Geometric skipping (Batagelj–Brandes) for sparse p.
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n = n as i64;
    while v < n {
        let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        w += 1 + (r.ln() / log_q).floor() as i64;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            edges.push((w as u32, v as u32, 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_connected;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_edge_count_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200;
        let p = 0.1;
        let g = erdos_renyi(n, p, &mut rng).unwrap();
        let expected = (n * (n - 1) / 2) as f64 * p;
        let m = g.edge_count() as f64;
        assert!(
            (m - expected).abs() < 5.0 * expected.sqrt() + 10.0,
            "m = {m}, expected ≈ {expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(erdos_renyi(10, 0.0, &mut rng).unwrap().edge_count(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut rng).unwrap().edge_count(), 45);
        assert!(erdos_renyi(0, 0.5, &mut rng).is_err());
        assert!(erdos_renyi(5, 1.5, &mut rng).is_err());
    }

    #[test]
    fn connected_variant_is_connected() {
        let mut rng = StdRng::seed_from_u64(7);
        for &n in &[1usize, 2, 10, 100] {
            let g = erdos_renyi_connected(n, 0.01, &mut rng).unwrap();
            assert!(is_connected(&g), "n = {n}");
        }
    }

    #[test]
    fn gnm_has_requested_edges() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = gnm_connected(50, 100, &mut rng).unwrap();
        assert!(g.edge_count() >= 100);
        assert_connected(&g);
        assert!(gnm_connected(5, 100, &mut rng).is_err());
    }

    #[test]
    fn geometric_is_connected_and_local() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = random_geometric(150, 0.15, &mut rng).unwrap();
        assert_connected(&g);
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let g1 = erdos_renyi_connected(64, 0.05, &mut StdRng::seed_from_u64(5)).unwrap();
        let g2 = erdos_renyi_connected(64, 0.05, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(g1, g2);
    }
}
