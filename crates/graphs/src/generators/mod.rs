//! Graph family generators used by the test suite and the experiment
//! harness.
//!
//! Every randomized generator takes an explicit `&mut impl Rng` so runs are
//! reproducible from a seed. Generators that can fail (impossible parameter
//! combinations) return [`GeneratorError`]; structurally infallible ones
//! return the graph directly.
//!
//! Families provided:
//!
//! * [`structured`] — paths, cycles, stars, complete graphs, 2-D grids and
//!   tori, hypercubes, caterpillars;
//! * [`random`] — Erdős–Rényi `G(n, p)` (optionally forced connected),
//!   `G(n, m)`, random geometric graphs;
//! * [`regular`] — random `d`-regular graphs (configuration model);
//! * [`planted`] — instances with a planted minimum cut: clique pairs,
//!   community pairs, barbells, lollipops;
//! * [`lower_bound`] — Das-Sarma-style instances (small diameter, large
//!   `√n` complexity) for the tightness experiment;
//! * [`weights`] — weight randomisation of an existing topology.

pub mod lower_bound;
pub mod planted;
pub mod random;
pub mod regular;
pub mod structured;
pub mod weights;

pub use lower_bound::das_sarma_style;
pub use planted::{barbell, clique_pair, community_pair, lollipop, PlantedCut};
pub use random::{erdos_renyi, erdos_renyi_connected, gnm_connected, random_geometric};
pub use regular::random_regular;
pub use structured::{
    caterpillar, complete, cycle, grid2d, hypercube, path, star, torus2d, torus3d_with_chords,
};
pub use weights::randomize_weights;

use crate::{GraphError, NodeId, WeightedGraph};
use std::error::Error;
use std::fmt;

/// Errors from graph generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeneratorError {
    /// The requested parameters cannot produce a valid graph.
    InvalidParameters {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The underlying graph construction failed.
    Graph(GraphError),
}

impl fmt::Display for GeneratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeneratorError::InvalidParameters { reason } => {
                write!(f, "invalid generator parameters: {reason}")
            }
            GeneratorError::Graph(e) => write!(f, "graph construction failed: {e}"),
        }
    }
}

impl Error for GeneratorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GeneratorError::Graph(e) => Some(e),
            GeneratorError::InvalidParameters { .. } => None,
        }
    }
}

impl From<GraphError> for GeneratorError {
    fn from(e: GraphError) -> Self {
        GeneratorError::Graph(e)
    }
}

pub(crate) fn invalid(reason: impl Into<String>) -> GeneratorError {
    GeneratorError::InvalidParameters {
        reason: reason.into(),
    }
}

/// Adds unit-weight edges joining the connected components of `edges` into a
/// single component: every component after the first gets one random edge to
/// a node of the growing connected part. Used by the `*_connected` variants.
pub(crate) fn connect_components<R: rand::Rng>(
    n: usize,
    edges: &mut Vec<(u32, u32, crate::Weight)>,
    rng: &mut R,
) {
    if n <= 1 {
        return;
    }
    // Union-find over current edges.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for &(u, v, _) in edges.iter() {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru as usize] = rv;
        }
    }
    // Pick one representative per component; connect them in random order.
    let mut reps: Vec<u32> = Vec::new();
    for v in 0..n as u32 {
        if find(&mut parent, v) == v {
            reps.push(v);
        }
    }
    use rand::seq::SliceRandom;
    reps.shuffle(rng);
    for pair in reps.windows(2) {
        edges.push((pair[0], pair[1], 1));
        let (a, b) = (find(&mut parent, pair[0]), find(&mut parent, pair[1]));
        parent[a as usize] = b;
    }
}

/// Convenience: asserts a generated graph is connected (used in tests).
pub fn assert_connected(g: &WeightedGraph) {
    assert!(
        crate::traversal::is_connected(g),
        "generated graph must be connected (n = {}, m = {})",
        g.node_count(),
        g.edge_count()
    );
}

/// Returns the node of minimum identifier — convenient as a canonical root.
pub fn min_node(_g: &WeightedGraph) -> NodeId {
    NodeId::new(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn connect_components_produces_connected_graph() {
        let mut rng = StdRng::seed_from_u64(3);
        // Three isolated pairs.
        let mut edges = vec![(0, 1, 1), (2, 3, 1), (4, 5, 1)];
        connect_components(6, &mut edges, &mut rng);
        let g = WeightedGraph::from_edges(6, edges).unwrap();
        assert_connected(&g);
        // Exactly two joining edges were added.
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn connect_components_noop_when_connected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut edges = vec![(0, 1, 1), (1, 2, 1)];
        connect_components(3, &mut edges, &mut rng);
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn generator_error_display() {
        let e = invalid("n must be positive");
        assert!(e.to_string().contains("n must be positive"));
        let g: GeneratorError = GraphError::TooManyEdges.into();
        assert!(g.to_string().contains("graph construction failed"));
    }
}
