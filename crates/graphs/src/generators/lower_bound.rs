//! Das-Sarma-style lower-bound instances.
//!
//! Das Sarma et al. [SICOMP 2013] prove that distributed min-cut (even
//! approximately) needs `Ω̃(√n + D)` rounds, using graphs made of `Γ` long
//! parallel paths stitched together by a shallow tree so that the diameter
//! is only `O(log n)` while information still has to travel across `Θ(ℓ)`
//! path hops or be funneled through the tree.
//!
//! We reproduce the *shape* of that construction (paths + balanced binary
//! tree over the columns). The experiment E5 uses it to show measured round
//! counts track `√n + D` on the family the lower bound is built from.

use super::{invalid, GeneratorError};
use crate::WeightedGraph;

/// Builds a Das-Sarma-style instance: `gamma` disjoint paths of `ell` nodes
/// each, plus a complete binary tree whose `ell` leaves connect to the
/// corresponding column in every path. All weights are 1.
///
/// Properties: `n = gamma·ell + (2·ell − 1)`, diameter `O(log ell)` via the
/// tree, and `Θ(gamma·ell)` nodes — so `√n ≫ D`, the regime where the
/// `Ω̃(√n)` term of the lower bound dominates.
///
/// # Errors
///
/// Fails unless `gamma ≥ 1` and `ell ≥ 2` and `ell` is a power of two.
pub fn das_sarma_style(gamma: usize, ell: usize) -> Result<WeightedGraph, GeneratorError> {
    if gamma == 0 {
        return Err(invalid("need at least one path"));
    }
    if ell < 2 || !ell.is_power_of_two() {
        return Err(invalid("ell must be a power of two ≥ 2"));
    }
    // Layout: paths occupy indices [0, gamma·ell); the tree occupies
    // [gamma·ell, gamma·ell + 2·ell − 1) in heap order (root first).
    let path_nodes = gamma * ell;
    let tree_nodes = 2 * ell - 1;
    let n = path_nodes + tree_nodes;
    let tree_base = path_nodes as u32;
    let mut edges = Vec::new();
    // Path edges.
    for p in 0..gamma {
        for c in 0..ell - 1 {
            let a = (p * ell + c) as u32;
            edges.push((a, a + 1, 1));
        }
    }
    // Tree edges (heap order: children of i are 2i+1, 2i+2).
    for i in 0..tree_nodes {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < tree_nodes {
                edges.push((tree_base + i as u32, tree_base + child as u32, 1));
            }
        }
    }
    // Leaf j (heap index ell−1+j) connects to column j of every path.
    for j in 0..ell {
        let leaf = tree_base + (ell - 1 + j) as u32;
        for p in 0..gamma {
            edges.push((leaf, (p * ell + j) as u32, 1));
        }
    }
    Ok(WeightedGraph::from_edges(n, edges)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_connected;
    use crate::traversal::exact_diameter;

    #[test]
    fn shape_and_size() {
        let g = das_sarma_style(4, 8).unwrap();
        assert_eq!(g.node_count(), 4 * 8 + 15);
        assert_connected(&g);
    }

    #[test]
    fn diameter_is_logarithmic() {
        // Paths of length 16 would have diameter 15 alone; the tree collapses
        // it to O(log ell).
        let g = das_sarma_style(4, 16).unwrap();
        let d = exact_diameter(&g);
        assert!(d <= 2 + 2 * 5, "diameter {d} too large");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(das_sarma_style(0, 8).is_err());
        assert!(das_sarma_style(2, 6).is_err());
        assert!(das_sarma_style(2, 1).is_err());
    }

    #[test]
    fn columns_attach_to_leaves() {
        let g = das_sarma_style(2, 4).unwrap();
        // Leaf for column 0 is tree heap index 3 → node 8 + 3 = 11.
        let leaf0 = crate::NodeId::new(2 * 4 + 3);
        let nbrs: Vec<u32> = g
            .neighbors(leaf0)
            .iter()
            .map(|a| a.neighbor.raw())
            .collect();
        assert!(nbrs.contains(&0)); // path 0, column 0
        assert!(nbrs.contains(&4)); // path 1, column 0
    }
}
