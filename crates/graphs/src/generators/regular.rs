//! Random `d`-regular graphs via the configuration model with edge-swap
//! repair.
//!
//! For `d ≥ 3` these are expanders with high probability, which makes them
//! the "hard internal structure" used inside planted-cut instances and the
//! high-connectivity workloads of the experiment suite.
//!
//! Rejecting the whole pairing until it is simple only works for tiny `d`
//! (the success probability decays like `e^{-Θ(d²)}`), so after the initial
//! random pairing we repair self loops and duplicate edges by degree-
//! preserving edge swaps — the standard practical method.

use super::{invalid, GeneratorError};
use crate::WeightedGraph;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// Generates a random simple `d`-regular graph on `n` nodes with unit
/// weights.
///
/// # Errors
///
/// Fails if `n·d` is odd, `d ≥ n`, or repair does not converge within the
/// (generous) step budget — which for `d < n/3` does not happen in practice.
pub fn random_regular<R: Rng>(
    n: usize,
    d: usize,
    rng: &mut R,
) -> Result<WeightedGraph, GeneratorError> {
    if n == 0 {
        return Err(invalid("regular graph requires n ≥ 1"));
    }
    if d >= n {
        return Err(invalid(format!("degree d = {d} must be < n = {n}")));
    }
    if !(n * d).is_multiple_of(2) {
        return Err(invalid("n·d must be even"));
    }
    if d == 0 {
        return Ok(WeightedGraph::from_edges(n, [])?);
    }

    const RESTARTS: usize = 20;
    for _ in 0..RESTARTS {
        if let Some(edges) = pair_and_repair(n, d, rng) {
            let g = WeightedGraph::from_edges(n, edges.into_iter().map(|(u, v)| (u, v, 1)))?;
            debug_assert!(g.nodes().all(|v| g.degree(v) == d));
            return Ok(g);
        }
    }
    Err(invalid(format!(
        "failed to generate simple {d}-regular graph on {n} nodes within retry budget"
    )))
}

fn canon(u: u32, v: u32) -> (u32, u32) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

/// One attempt: random stub pairing followed by edge-swap repair. Returns
/// the simple edge list or `None` if the swap budget is exhausted.
fn pair_and_repair<R: Rng>(n: usize, d: usize, rng: &mut R) -> Option<Vec<(u32, u32)>> {
    let mut stubs: Vec<u32> = Vec::with_capacity(n * d);
    for v in 0..n as u32 {
        for _ in 0..d {
            stubs.push(v);
        }
    }
    stubs.shuffle(rng);
    let m = stubs.len() / 2;
    let mut edges: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|p| canon(p[0], p[1])).collect();
    let mut counts: HashMap<(u32, u32), u32> = HashMap::with_capacity(m);
    for &e in &edges {
        *counts.entry(e).or_insert(0) += 1;
    }
    let is_bad = |e: (u32, u32), counts: &HashMap<(u32, u32), u32>| {
        e.0 == e.1 || counts.get(&e).copied().unwrap_or(0) > 1
    };

    let budget = 200 * m + 1000;
    let mut steps = 0;
    loop {
        // Collect currently-bad edge positions.
        let bad: Vec<usize> = (0..m).filter(|&i| is_bad(edges[i], &counts)).collect();
        if bad.is_empty() {
            return Some(edges);
        }
        for &i in &bad {
            if !is_bad(edges[i], &counts) {
                continue; // fixed by an earlier swap this sweep
            }
            steps += 1;
            if steps > budget {
                return None;
            }
            let j = rng.gen_range(0..m);
            if j == i {
                continue;
            }
            let (u, v) = edges[i];
            let (x, y) = edges[j];
            // Two possible rewirings; try them in random order.
            let first = rng.gen_bool(0.5);
            let options = if first {
                [((u, x), (v, y)), ((u, y), (v, x))]
            } else {
                [((u, y), (v, x)), ((u, x), (v, y))]
            };
            for ((a1, b1), (a2, b2)) in options {
                if a1 == b1 || a2 == b2 {
                    continue; // would create a self loop
                }
                let e1 = canon(a1, b1);
                let e2 = canon(a2, b2);
                // New edges must not already exist (and must not duplicate
                // each other).
                let exists = |e: (u32, u32)| counts.get(&e).copied().unwrap_or(0) > 0;
                if exists(e1) || exists(e2) || e1 == e2 {
                    continue;
                }
                // Apply the swap.
                for old in [edges[i], edges[j]] {
                    let c = counts.get_mut(&old).expect("old edge counted");
                    *c -= 1;
                    if *c == 0 {
                        counts.remove(&old);
                    }
                }
                edges[i] = e1;
                edges[j] = e2;
                *counts.entry(e1).or_insert(0) += 1;
                *counts.entry(e2).or_insert(0) += 1;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn produces_regular_graph() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = random_regular(50, 4, &mut rng).unwrap();
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.edge_count(), 100);
    }

    #[test]
    fn three_regular_is_usually_connected() {
        // Random 3-regular graphs are connected whp; check a few seeds.
        let mut connected = 0;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_regular(64, 3, &mut rng).unwrap();
            if crate::traversal::is_connected(&g) {
                connected += 1;
            }
        }
        assert!(connected >= 4, "only {connected}/5 connected");
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_regular(5, 3, &mut rng).is_err()); // odd n·d
        assert!(random_regular(4, 4, &mut rng).is_err()); // d ≥ n
        assert!(random_regular(0, 0, &mut rng).is_err());
    }

    #[test]
    fn zero_regular_is_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_regular(6, 0, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn dense_regular_also_works() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = random_regular(16, 8, &mut rng).unwrap();
        assert!(g.nodes().all(|v| g.degree(v) == 8));
        assert_connected(&g);
    }

    #[test]
    fn high_degree_medium_n() {
        let mut rng = StdRng::seed_from_u64(29);
        for d in [3, 5, 6, 10, 12] {
            let g = random_regular(40, d, &mut rng).unwrap();
            assert!(g.nodes().all(|v| g.degree(v) == d), "d = {d}");
        }
    }
}
