//! Instances with a planted (known or certified) minimum cut.
//!
//! These drive the correctness experiments (E1), the `poly(λ)` scaling
//! experiment (E3), and the approximation-quality experiment (E4): we need
//! graphs where the minimum cut is known by construction or cheaply
//! verifiable.

use super::{invalid, GeneratorError};
use crate::{NodeId, Weight, WeightedGraph};
use rand::Rng;

/// A generated instance with its planted cut.
#[derive(Clone, Debug)]
pub struct PlantedCut {
    /// The instance.
    pub graph: WeightedGraph,
    /// Side bitmap of the planted cut (`true` = left community).
    pub side: Vec<bool>,
    /// Value of the planted cut. For [`clique_pair`] this is **guaranteed**
    /// to be the minimum cut; for [`community_pair`] it is the minimum with
    /// overwhelming probability and should be verified by an oracle in
    /// tests (the experiment harness does).
    pub planted_value: Weight,
}

/// Two cliques `K_h` (unit weights) joined by a matching of `lambda` unit
/// edges. For `h ≥ lambda + 2` the minimum cut is **exactly** `lambda`:
/// any cut splitting a clique pays at least `h − 1 > lambda`, so the planted
/// separation is optimal.
///
/// # Errors
///
/// Fails if `h < lambda + 2` (the guarantee would break), `lambda == 0`,
/// or `lambda > h`.
pub fn clique_pair(h: usize, lambda: usize) -> Result<PlantedCut, GeneratorError> {
    if lambda == 0 {
        return Err(invalid("lambda must be ≥ 1 (graph must be connected)"));
    }
    if h < lambda + 2 {
        return Err(invalid(format!(
            "need h ≥ lambda + 2 for exactness (h = {h}, lambda = {lambda})"
        )));
    }
    if lambda > h {
        return Err(invalid("lambda cannot exceed h (matching)"));
    }
    let n = 2 * h;
    let mut edges = Vec::new();
    for u in 0..h {
        for v in (u + 1)..h {
            edges.push((u as u32, v as u32, 1));
            edges.push(((h + u) as u32, (h + v) as u32, 1));
        }
    }
    for i in 0..lambda {
        edges.push((i as u32, (h + i) as u32, 1));
    }
    let graph = WeightedGraph::from_edges(n, edges)?;
    let mut side = vec![false; n];
    for s in side.iter_mut().take(h) {
        *s = true;
    }
    Ok(PlantedCut {
        graph,
        side,
        planted_value: lambda as Weight,
    })
}

/// Two random `d`-regular communities of `half` nodes each, joined by
/// `lambda` unit cross edges between random distinct endpoint pairs.
///
/// For `d ≥ lambda + 2` and `half ≫ d` the planted cut is the minimum with
/// high probability (random regular graphs are `d`-edge-connected whp);
/// the experiment harness certifies instances with a sequential oracle
/// before use.
///
/// # Errors
///
/// Fails on degenerate parameters (see [`super::random_regular`]) or when
/// `lambda > half`.
pub fn community_pair<R: Rng>(
    half: usize,
    d: usize,
    lambda: usize,
    rng: &mut R,
) -> Result<PlantedCut, GeneratorError> {
    if lambda == 0 {
        return Err(invalid("lambda must be ≥ 1"));
    }
    if lambda > half {
        return Err(invalid("lambda cannot exceed community size"));
    }
    let a = super::random_regular(half, d, rng)?;
    let b = super::random_regular(half, d, rng)?;
    let n = 2 * half;
    let mut edges: Vec<(u32, u32, Weight)> = Vec::new();
    for (_, u, v, w) in a.edge_tuples() {
        edges.push((u.raw(), v.raw(), w));
    }
    for (_, u, v, w) in b.edge_tuples() {
        edges.push((u.raw() + half as u32, v.raw() + half as u32, w));
    }
    // Cross matching on distinct endpoints.
    let mut left: Vec<u32> = (0..half as u32).collect();
    let mut right: Vec<u32> = (half as u32..n as u32).collect();
    use rand::seq::SliceRandom;
    left.shuffle(rng);
    right.shuffle(rng);
    for i in 0..lambda {
        edges.push((left[i], right[i], 1));
    }
    let graph = WeightedGraph::from_edges(n, edges)?;
    let mut side = vec![false; n];
    for s in side.iter_mut().take(half) {
        *s = true;
    }
    Ok(PlantedCut {
        graph,
        side,
        planted_value: lambda as Weight,
    })
}

/// Barbell: two cliques `K_h` joined by a path of `bridge` intermediate
/// nodes (unit weights). The minimum cut is 1 (any bridge edge) and the
/// diameter is `bridge + 3` for `h ≥ 2`. Useful for instances with large
/// diameter and tiny min cut.
///
/// # Errors
///
/// Fails if `h < 3`.
pub fn barbell(h: usize, bridge: usize) -> Result<PlantedCut, GeneratorError> {
    if h < 3 {
        return Err(invalid("barbell requires clique size ≥ 3"));
    }
    let n = 2 * h + bridge;
    let mut edges = Vec::new();
    for u in 0..h {
        for v in (u + 1)..h {
            edges.push((u as u32, v as u32, 1));
            edges.push(((h + bridge + u) as u32, (h + bridge + v) as u32, 1));
        }
    }
    // Path: clique A node 0 — bridge nodes — clique B node (h+bridge).
    let mut prev = 0u32;
    for i in 0..bridge {
        let b = (h + i) as u32;
        edges.push((prev, b, 1));
        prev = b;
    }
    edges.push((prev, (h + bridge) as u32, 1));
    let graph = WeightedGraph::from_edges(n, edges)?;
    let mut side = vec![false; n];
    for s in side.iter_mut().take(h) {
        *s = true;
    }
    Ok(PlantedCut {
        graph,
        side,
        planted_value: 1,
    })
}

/// Lollipop: a clique `K_h` with a path of `tail` nodes hanging off node 0.
/// Minimum cut 1 (tail edges), diameter `tail + 1`.
///
/// # Errors
///
/// Fails if `h < 3` or `tail == 0`.
pub fn lollipop(h: usize, tail: usize) -> Result<PlantedCut, GeneratorError> {
    if h < 3 {
        return Err(invalid("lollipop requires clique size ≥ 3"));
    }
    if tail == 0 {
        return Err(invalid("lollipop requires tail ≥ 1"));
    }
    let n = h + tail;
    let mut edges = Vec::new();
    for u in 0..h {
        for v in (u + 1)..h {
            edges.push((u as u32, v as u32, 1));
        }
    }
    let mut prev = 0u32;
    for i in 0..tail {
        let t = (h + i) as u32;
        edges.push((prev, t, 1));
        prev = t;
    }
    let graph = WeightedGraph::from_edges(n, edges)?;
    // Planted cut: the last tail node alone.
    let mut side = vec![false; n];
    side[n - 1] = true;
    Ok(PlantedCut {
        graph,
        side,
        planted_value: 1,
    })
}

impl PlantedCut {
    /// Sanity check: re-evaluates the planted side and confirms it matches
    /// `planted_value`. (It being *minimum* is checked by oracles in tests.)
    pub fn verify_planted_value(&self) -> bool {
        crate::cut::cut_of_side(&self.graph, &self.side) == self.planted_value
    }

    /// The nodes on the planted left side.
    pub fn left_side(&self) -> Vec<NodeId> {
        self.side
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clique_pair_planted_value() {
        let p = clique_pair(6, 3).unwrap();
        assert_eq!(p.graph.node_count(), 12);
        assert!(p.verify_planted_value());
        assert_connected(&p.graph);
        // Exhaustive check that 3 is the true minimum on this small instance.
        let g = &p.graph;
        let n = g.node_count();
        let mut best = u64::MAX;
        for mask in 1..(1u32 << n) - 1 {
            let side: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
            best = best.min(crate::cut::cut_of_side(g, &side));
        }
        assert_eq!(best, 3);
    }

    #[test]
    fn clique_pair_parameter_guards() {
        assert!(clique_pair(4, 3).is_err()); // h < lambda + 2
        assert!(clique_pair(5, 0).is_err());
    }

    #[test]
    fn community_pair_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = community_pair(30, 6, 3, &mut rng).unwrap();
        assert_eq!(p.graph.node_count(), 60);
        assert!(p.verify_planted_value());
        assert_connected(&p.graph);
        assert_eq!(p.left_side().len(), 30);
    }

    #[test]
    fn barbell_shape() {
        let p = barbell(5, 3).unwrap();
        assert_eq!(p.graph.node_count(), 13);
        assert!(p.verify_planted_value());
        assert_connected(&p.graph);
        // Worst pair: a non-endpoint clique-A node to a non-endpoint
        // clique-B node: 1 + (bridge + 1) + 1 hops.
        assert_eq!(crate::traversal::exact_diameter(&p.graph), 3 + 3);
    }

    #[test]
    fn lollipop_shape() {
        let p = lollipop(4, 5).unwrap();
        assert_eq!(p.graph.node_count(), 9);
        assert!(p.verify_planted_value());
        assert_connected(&p.graph);
    }
}
