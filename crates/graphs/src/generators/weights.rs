//! Weight randomisation for existing topologies.

use super::{invalid, GeneratorError};
use crate::{Weight, WeightedGraph};
use rand::Rng;

/// Returns a graph with the same topology but each edge weight drawn
/// uniformly from `[lo, hi]`.
///
/// # Errors
///
/// Fails if `lo == 0` or `lo > hi`.
pub fn randomize_weights<R: Rng>(
    g: &WeightedGraph,
    lo: Weight,
    hi: Weight,
    rng: &mut R,
) -> Result<WeightedGraph, GeneratorError> {
    if lo == 0 {
        return Err(invalid("weights must be positive"));
    }
    if lo > hi {
        return Err(invalid("lo must not exceed hi"));
    }
    let edges = g
        .edge_tuples()
        .map(|(_, u, v, _)| (u.raw(), v.raw(), rng.gen_range(lo..=hi)));
    Ok(WeightedGraph::from_edges(g.node_count(), edges)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_in_range_topology_preserved() {
        let base = crate::generators::structured::grid2d(4, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let g = randomize_weights(&base, 3, 9, &mut rng).unwrap();
        assert_eq!(g.edge_count(), base.edge_count());
        for (e, u, v, w) in g.edge_tuples() {
            assert!((3..=9).contains(&w), "weight {w} out of range");
            assert_eq!(base.endpoints(e), (u, v));
        }
    }

    #[test]
    fn rejects_bad_range() {
        let base = crate::generators::structured::path(3).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(randomize_weights(&base, 0, 5, &mut rng).is_err());
        assert!(randomize_weights(&base, 6, 5, &mut rng).is_err());
    }

    #[test]
    fn unit_range_is_identity_topology() {
        let base = crate::generators::structured::cycle(5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let g = randomize_weights(&base, 1, 1, &mut rng).unwrap();
        assert_eq!(g, base);
    }
}
