//! Deterministic structured families: paths, cycles, stars, cliques, grids,
//! tori, hypercubes, caterpillars.

use super::{invalid, GeneratorError};
use crate::{Weight, WeightedGraph};

/// Path `0 − 1 − … − (n−1)` with unit weights.
///
/// # Errors
///
/// Fails if `n == 0`.
pub fn path(n: usize) -> Result<WeightedGraph, GeneratorError> {
    if n == 0 {
        return Err(invalid("path requires n ≥ 1"));
    }
    let edges = (0..n.saturating_sub(1)).map(|i| (i as u32, i as u32 + 1, 1));
    Ok(WeightedGraph::from_edges(n, edges)?)
}

/// Cycle on `n ≥ 3` nodes with unit weights.
///
/// # Errors
///
/// Fails if `n < 3`.
pub fn cycle(n: usize) -> Result<WeightedGraph, GeneratorError> {
    if n < 3 {
        return Err(invalid("cycle requires n ≥ 3"));
    }
    let edges = (0..n).map(|i| (i as u32, ((i + 1) % n) as u32, 1));
    Ok(WeightedGraph::from_edges(n, edges)?)
}

/// Star with center 0 and `n − 1` leaves, unit weights.
///
/// # Errors
///
/// Fails if `n < 2`.
pub fn star(n: usize) -> Result<WeightedGraph, GeneratorError> {
    if n < 2 {
        return Err(invalid("star requires n ≥ 2"));
    }
    let edges = (1..n).map(|i| (0, i as u32, 1));
    Ok(WeightedGraph::from_edges(n, edges)?)
}

/// Complete graph `K_n` with uniform weight `w`.
///
/// # Errors
///
/// Fails if `n < 2` or `w == 0`.
pub fn complete(n: usize, w: Weight) -> Result<WeightedGraph, GeneratorError> {
    if n < 2 {
        return Err(invalid("complete graph requires n ≥ 2"));
    }
    if w == 0 {
        return Err(invalid("weight must be positive"));
    }
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u as u32, v as u32, w));
        }
    }
    Ok(WeightedGraph::from_edges(n, edges)?)
}

/// `rows × cols` grid (no wraparound), unit weights. Node `(r, c)` has index
/// `r·cols + c`. Diameter is `rows + cols − 2`.
///
/// # Errors
///
/// Fails if either dimension is zero.
pub fn grid2d(rows: usize, cols: usize) -> Result<WeightedGraph, GeneratorError> {
    if rows == 0 || cols == 0 {
        return Err(invalid("grid requires positive dimensions"));
    }
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1), 1));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c), 1));
            }
        }
    }
    Ok(WeightedGraph::from_edges(rows * cols, edges)?)
}

/// `rows × cols` torus (grid with wraparound), unit weights. The graph is
/// 4-regular, and the minimum cut is 4 (any singleton; slicing a full ring
/// costs `2·min(rows, cols) ≥ 6`). Diameter is `⌊rows/2⌋ + ⌊cols/2⌋`.
///
/// # Errors
///
/// Fails unless both dimensions are ≥ 3 (smaller tori degenerate into
/// multi-edges).
pub fn torus2d(rows: usize, cols: usize) -> Result<WeightedGraph, GeneratorError> {
    if rows < 3 || cols < 3 {
        return Err(invalid("torus requires both dimensions ≥ 3"));
    }
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            edges.push((idx(r, c), idx(r, (c + 1) % cols), 1));
            edges.push((idx(r, c), idx((r + 1) % rows, c), 1));
        }
    }
    Ok(WeightedGraph::from_edges(rows * cols, edges)?)
}

/// 3-dimensional torus `Z_a × Z_b × Z_c` (unit weights, degree 6) plus
/// `chords` deterministic long-range weight-7 chords among high-id
/// nodes.
///
/// The bare torus is vertex-transitive, so its edge connectivity equals
/// its degree: λ = 6 exactly. Chords only *add* edges (no cut value can
/// decrease) and their weight exceeds 6, so every singleton of a
/// non-chord node still costs 6 — the minimum cut stays exactly 6 by
/// construction. The chords scatter any spanning-tree fragment
/// decomposition, forcing LCAs into third fragments — the workload of
/// the large-`n` regression test and its benchmark row, which must
/// measure the *same* instance (hence one shared builder). Chord
/// endpoints come from a fixed xorshift stream restricted to the
/// high-id half, so attachment pairs land on large ids (large packed
/// keys).
///
/// # Errors
///
/// Fails unless all three dimensions are ≥ 3 (smaller tori degenerate
/// into multi-edges); chords that would self-loop are skipped, not
/// errors.
pub fn torus3d_with_chords(
    a: usize,
    b: usize,
    c: usize,
    chords: usize,
) -> Result<WeightedGraph, GeneratorError> {
    if a < 3 || b < 3 || c < 3 {
        return Err(invalid("3D torus requires all dimensions ≥ 3"));
    }
    let n = a * b * c;
    let id = |x: usize, y: usize, z: usize| -> u32 { ((x * b + y) * c + z) as u32 };
    let mut edges = Vec::with_capacity(3 * n + chords);
    for x in 0..a {
        for y in 0..b {
            for z in 0..c {
                edges.push((id(x, y, z), id((x + 1) % a, y, z), 1));
                edges.push((id(x, y, z), id(x, (y + 1) % b, z), 1));
                edges.push((id(x, y, z), id(x, y, (z + 1) % c), 1));
            }
        }
    }
    let mut s = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for _ in 0..chords {
        let u = (n / 2 + (next() as usize) % (n / 2)) as u32;
        let v = (n / 2 + (next() as usize) % (n / 2)) as u32;
        if u != v {
            edges.push((u.min(v), u.max(v), 7));
        }
    }
    Ok(WeightedGraph::from_edges(n, edges)?)
}

/// Hypercube on `2^dim` nodes, unit weights. Minimum cut is `dim`
/// (isolating any single vertex; the hypercube is `dim`-regular and
/// `dim`-edge-connected). Diameter is `dim`.
///
/// # Errors
///
/// Fails if `dim == 0` or `dim ≥ 31`.
pub fn hypercube(dim: usize) -> Result<WeightedGraph, GeneratorError> {
    if dim == 0 {
        return Err(invalid("hypercube requires dim ≥ 1"));
    }
    if dim >= 31 {
        return Err(invalid("hypercube dim too large"));
    }
    let n = 1usize << dim;
    let mut edges = Vec::with_capacity(n * dim / 2);
    for v in 0..n {
        for b in 0..dim {
            let u = v ^ (1 << b);
            if v < u {
                edges.push((v as u32, u as u32, 1));
            }
        }
    }
    Ok(WeightedGraph::from_edges(n, edges)?)
}

/// Caterpillar: a spine path of `spine` nodes, each with `legs` leaf nodes
/// attached, unit weights. Useful as a deep-but-bushy tree topology; the
/// minimum cut is 1 (any leaf).
///
/// # Errors
///
/// Fails if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Result<WeightedGraph, GeneratorError> {
    if spine == 0 {
        return Err(invalid("caterpillar requires spine ≥ 1"));
    }
    let n = spine * (1 + legs);
    let mut edges = Vec::new();
    for i in 0..spine.saturating_sub(1) {
        edges.push((i as u32, (i + 1) as u32, 1));
    }
    let mut next = spine as u32;
    for i in 0..spine {
        for _ in 0..legs {
            edges.push((i as u32, next, 1));
            next += 1;
        }
    }
    Ok(WeightedGraph::from_edges(n, edges)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_connected;
    use crate::traversal::exact_diameter;

    #[test]
    fn path_shape() {
        let g = path(6).unwrap();
        assert_eq!(g.edge_count(), 5);
        assert_eq!(exact_diameter(&g), 5);
        assert_connected(&g);
        assert!(path(0).is_err());
        assert_eq!(path(1).unwrap().edge_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(8).unwrap();
        assert_eq!(g.edge_count(), 8);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert_eq!(exact_diameter(&g), 4);
        assert!(cycle(2).is_err());
    }

    #[test]
    fn star_shape() {
        let g = star(9).unwrap();
        assert_eq!(g.degree(crate::NodeId::new(0)), 8);
        assert_eq!(exact_diameter(&g), 2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(5, 2).unwrap();
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.weighted_degree(crate::NodeId::new(2)), 8);
        assert!(complete(1, 1).is_err());
        assert!(complete(3, 0).is_err());
    }

    #[test]
    fn grid_and_torus() {
        let g = grid2d(3, 4).unwrap();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(exact_diameter(&g), 5);

        let t = torus2d(3, 4).unwrap();
        assert_eq!(t.node_count(), 12);
        assert_eq!(t.edge_count(), 24);
        assert!(t.nodes().all(|v| t.degree(v) == 4));
        assert_eq!(exact_diameter(&t), 3);
        assert!(torus2d(2, 5).is_err());
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.node_count(), 16);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(exact_diameter(&g), 4);
        assert!(hypercube(0).is_err());
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 3).unwrap();
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 15); // a tree
        assert_connected(&g);
    }
}
