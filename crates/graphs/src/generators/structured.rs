//! Deterministic structured families: paths, cycles, stars, cliques, grids,
//! tori, hypercubes, caterpillars.

use super::{invalid, GeneratorError};
use crate::{Weight, WeightedGraph};

/// Path `0 − 1 − … − (n−1)` with unit weights.
///
/// # Errors
///
/// Fails if `n == 0`.
pub fn path(n: usize) -> Result<WeightedGraph, GeneratorError> {
    if n == 0 {
        return Err(invalid("path requires n ≥ 1"));
    }
    let edges = (0..n.saturating_sub(1)).map(|i| (i as u32, i as u32 + 1, 1));
    Ok(WeightedGraph::from_edges(n, edges)?)
}

/// Cycle on `n ≥ 3` nodes with unit weights.
///
/// # Errors
///
/// Fails if `n < 3`.
pub fn cycle(n: usize) -> Result<WeightedGraph, GeneratorError> {
    if n < 3 {
        return Err(invalid("cycle requires n ≥ 3"));
    }
    let edges = (0..n).map(|i| (i as u32, ((i + 1) % n) as u32, 1));
    Ok(WeightedGraph::from_edges(n, edges)?)
}

/// Star with center 0 and `n − 1` leaves, unit weights.
///
/// # Errors
///
/// Fails if `n < 2`.
pub fn star(n: usize) -> Result<WeightedGraph, GeneratorError> {
    if n < 2 {
        return Err(invalid("star requires n ≥ 2"));
    }
    let edges = (1..n).map(|i| (0, i as u32, 1));
    Ok(WeightedGraph::from_edges(n, edges)?)
}

/// Complete graph `K_n` with uniform weight `w`.
///
/// # Errors
///
/// Fails if `n < 2` or `w == 0`.
pub fn complete(n: usize, w: Weight) -> Result<WeightedGraph, GeneratorError> {
    if n < 2 {
        return Err(invalid("complete graph requires n ≥ 2"));
    }
    if w == 0 {
        return Err(invalid("weight must be positive"));
    }
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u as u32, v as u32, w));
        }
    }
    Ok(WeightedGraph::from_edges(n, edges)?)
}

/// `rows × cols` grid (no wraparound), unit weights. Node `(r, c)` has index
/// `r·cols + c`. Diameter is `rows + cols − 2`.
///
/// # Errors
///
/// Fails if either dimension is zero.
pub fn grid2d(rows: usize, cols: usize) -> Result<WeightedGraph, GeneratorError> {
    if rows == 0 || cols == 0 {
        return Err(invalid("grid requires positive dimensions"));
    }
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1), 1));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c), 1));
            }
        }
    }
    Ok(WeightedGraph::from_edges(rows * cols, edges)?)
}

/// `rows × cols` torus (grid with wraparound), unit weights. The graph is
/// 4-regular, and the minimum cut is 4 (any singleton; slicing a full ring
/// costs `2·min(rows, cols) ≥ 6`). Diameter is `⌊rows/2⌋ + ⌊cols/2⌋`.
///
/// # Errors
///
/// Fails unless both dimensions are ≥ 3 (smaller tori degenerate into
/// multi-edges).
pub fn torus2d(rows: usize, cols: usize) -> Result<WeightedGraph, GeneratorError> {
    if rows < 3 || cols < 3 {
        return Err(invalid("torus requires both dimensions ≥ 3"));
    }
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            edges.push((idx(r, c), idx(r, (c + 1) % cols), 1));
            edges.push((idx(r, c), idx((r + 1) % rows, c), 1));
        }
    }
    Ok(WeightedGraph::from_edges(rows * cols, edges)?)
}

/// Hypercube on `2^dim` nodes, unit weights. Minimum cut is `dim`
/// (isolating any single vertex; the hypercube is `dim`-regular and
/// `dim`-edge-connected). Diameter is `dim`.
///
/// # Errors
///
/// Fails if `dim == 0` or `dim ≥ 31`.
pub fn hypercube(dim: usize) -> Result<WeightedGraph, GeneratorError> {
    if dim == 0 {
        return Err(invalid("hypercube requires dim ≥ 1"));
    }
    if dim >= 31 {
        return Err(invalid("hypercube dim too large"));
    }
    let n = 1usize << dim;
    let mut edges = Vec::with_capacity(n * dim / 2);
    for v in 0..n {
        for b in 0..dim {
            let u = v ^ (1 << b);
            if v < u {
                edges.push((v as u32, u as u32, 1));
            }
        }
    }
    Ok(WeightedGraph::from_edges(n, edges)?)
}

/// Caterpillar: a spine path of `spine` nodes, each with `legs` leaf nodes
/// attached, unit weights. Useful as a deep-but-bushy tree topology; the
/// minimum cut is 1 (any leaf).
///
/// # Errors
///
/// Fails if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Result<WeightedGraph, GeneratorError> {
    if spine == 0 {
        return Err(invalid("caterpillar requires spine ≥ 1"));
    }
    let n = spine * (1 + legs);
    let mut edges = Vec::new();
    for i in 0..spine.saturating_sub(1) {
        edges.push((i as u32, (i + 1) as u32, 1));
    }
    let mut next = spine as u32;
    for i in 0..spine {
        for _ in 0..legs {
            edges.push((i as u32, next, 1));
            next += 1;
        }
    }
    Ok(WeightedGraph::from_edges(n, edges)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_connected;
    use crate::traversal::exact_diameter;

    #[test]
    fn path_shape() {
        let g = path(6).unwrap();
        assert_eq!(g.edge_count(), 5);
        assert_eq!(exact_diameter(&g), 5);
        assert_connected(&g);
        assert!(path(0).is_err());
        assert_eq!(path(1).unwrap().edge_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(8).unwrap();
        assert_eq!(g.edge_count(), 8);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert_eq!(exact_diameter(&g), 4);
        assert!(cycle(2).is_err());
    }

    #[test]
    fn star_shape() {
        let g = star(9).unwrap();
        assert_eq!(g.degree(crate::NodeId::new(0)), 8);
        assert_eq!(exact_diameter(&g), 2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(5, 2).unwrap();
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.weighted_degree(crate::NodeId::new(2)), 8);
        assert!(complete(1, 1).is_err());
        assert!(complete(3, 0).is_err());
    }

    #[test]
    fn grid_and_torus() {
        let g = grid2d(3, 4).unwrap();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(exact_diameter(&g), 5);

        let t = torus2d(3, 4).unwrap();
        assert_eq!(t.node_count(), 12);
        assert_eq!(t.edge_count(), 24);
        assert!(t.nodes().all(|v| t.degree(v) == 4));
        assert_eq!(exact_diameter(&t), 3);
        assert!(torus2d(2, 5).is_err());
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.node_count(), 16);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(exact_diameter(&g), 4);
        assert!(hypercube(0).is_err());
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 3).unwrap();
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 15); // a tree
        assert_connected(&g);
    }
}
