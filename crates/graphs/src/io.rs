//! Plain-text edge-list serialization.
//!
//! Format: first non-comment line is `n m`, followed by `m` lines `u v w`.
//! Lines starting with `#` are comments. This is the format the experiment
//! binaries use to persist generated instances.

use crate::{GraphBuilder, GraphError, WeightedGraph};
use std::io::{BufRead, Write};

/// Serializes a graph in the edge-list format to a writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(g: &WeightedGraph, mut out: W) -> std::io::Result<()> {
    writeln!(out, "# weighted undirected graph: n m, then u v w per edge")?;
    writeln!(out, "{} {}", g.node_count(), g.edge_count())?;
    for (_, u, v, w) in g.edge_tuples() {
        writeln!(out, "{} {} {}", u.raw(), v.raw(), w)?;
    }
    Ok(())
}

/// Serializes a graph to a `String` in the edge-list format.
pub fn to_edge_list_string(g: &WeightedGraph) -> String {
    let mut buf = Vec::new();
    write_edge_list(g, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("edge list output is ASCII")
}

/// Parses a graph from the edge-list format.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input, and the usual builder
/// errors on semantic problems (self loops, out-of-range endpoints, …).
pub fn read_edge_list<R: BufRead>(input: R) -> Result<WeightedGraph, GraphError> {
    let mut header: Option<(usize, usize)> = None;
    let mut builder: Option<GraphBuilder> = None;
    let mut expected_edges = 0usize;
    let mut seen_edges = 0usize;
    for (line_no, line) in input.lines().enumerate() {
        let line_no = line_no + 1;
        let line = line.map_err(|e| GraphError::Parse {
            line: line_no,
            reason: format!("I/O error: {e}"),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        if header.is_none() {
            let n: usize = parse_field(&mut parts, line_no, "node count")?;
            let m: usize = parse_field(&mut parts, line_no, "edge count")?;
            header = Some((n, m));
            expected_edges = m;
            builder = Some(GraphBuilder::new(n));
            continue;
        }
        let b = builder.as_mut().expect("builder exists after header");
        let u: u32 = parse_field(&mut parts, line_no, "endpoint u")?;
        let v: u32 = parse_field(&mut parts, line_no, "endpoint v")?;
        let w: u64 = parse_field(&mut parts, line_no, "weight w")?;
        b.add_edge(u, v, w);
        seen_edges += 1;
    }
    let b = builder.ok_or(GraphError::Parse {
        line: 0,
        reason: "missing header line `n m`".to_string(),
    })?;
    if seen_edges != expected_edges {
        return Err(GraphError::Parse {
            line: 0,
            reason: format!("header declared {expected_edges} edges, found {seen_edges}"),
        });
    }
    b.build()
}

/// Parses a graph from a string in the edge-list format.
///
/// # Errors
///
/// Same as [`read_edge_list`].
pub fn from_edge_list_str(s: &str) -> Result<WeightedGraph, GraphError> {
    read_edge_list(s.as_bytes())
}

fn parse_field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<T, GraphError> {
    let tok = parts.next().ok_or_else(|| GraphError::Parse {
        line,
        reason: format!("missing {what}"),
    })?;
    tok.parse().map_err(|_| GraphError::Parse {
        line,
        reason: format!("invalid {what}: {tok:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 5), (1, 2, 1), (2, 3, 9)]).unwrap();
        let s = to_edge_list_string(&g);
        let g2 = from_edge_list_str(&s).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn accepts_comments_and_blank_lines() {
        let s = "# comment\n\n3 2\n0 1 1\n# another\n1 2 4\n";
        let g = from_edge_list_str(s).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(matches!(
            from_edge_list_str("# only comments\n"),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_bad_weight() {
        let s = "2 1\n0 1 banana\n";
        let err = from_edge_list_str(s).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_wrong_edge_count() {
        let s = "3 5\n0 1 1\n";
        assert!(matches!(
            from_edge_list_str(s),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn propagates_semantic_errors() {
        let s = "2 1\n0 0 3\n";
        assert!(matches!(
            from_edge_list_str(s),
            Err(GraphError::SelfLoop { .. })
        ));
    }
}
