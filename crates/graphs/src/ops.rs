//! Graph operations: edge-subset subgraphs, reweighting, and contraction.
//!
//! These are used by the sampling-based algorithms (Karger skeletons, the
//! Su-style baseline) and by the sequential contraction algorithms.

use crate::{EdgeId, GraphError, NodeId, Weight, WeightedGraph};

/// Returns the subgraph containing exactly the edges with `keep[e] == true`,
/// on the same node set (node indices are preserved).
///
/// # Panics
///
/// Panics if `keep.len() != g.edge_count()`.
pub fn edge_subgraph(g: &WeightedGraph, keep: &[bool]) -> WeightedGraph {
    assert_eq!(keep.len(), g.edge_count(), "edge mask length must equal m");
    let edges = g
        .edge_tuples()
        .filter(|(e, _, _, _)| keep[e.index()])
        .map(|(_, u, v, w)| (u.raw(), v.raw(), w));
    WeightedGraph::from_edges(g.node_count(), edges)
        .expect("subgraph of a valid graph is always valid")
}

/// Returns a graph with the same topology but weights replaced by
/// `new_weight(e)`; edges mapped to weight 0 are dropped.
pub fn reweight<F: FnMut(EdgeId, Weight) -> Weight>(
    g: &WeightedGraph,
    mut new_weight: F,
) -> WeightedGraph {
    let edges = g.edge_tuples().filter_map(|(e, u, v, w)| {
        let nw = new_weight(e, w);
        (nw > 0).then_some((u.raw(), v.raw(), nw))
    });
    WeightedGraph::from_edges(g.node_count(), edges)
        .expect("reweighted graph of a valid graph is always valid")
}

/// Result of contracting a graph by a node-label map.
#[derive(Clone, Debug)]
pub struct Contraction {
    /// The contracted multigraph (parallel edges merged, self loops dropped).
    pub graph: WeightedGraph,
    /// `super_node[v]` is the contracted node that original node `v` maps to.
    pub super_node: Vec<NodeId>,
}

/// Contracts nodes that share a label into super-nodes.
///
/// Labels may be arbitrary `u32` values; they are compacted to a dense range
/// in order of first appearance by node index. Edges inside a group vanish;
/// parallel edges between groups merge with summed weight.
///
/// # Errors
///
/// Returns an error if `labels.len() != g.node_count()`.
pub fn contract_by_labels(g: &WeightedGraph, labels: &[u32]) -> Result<Contraction, GraphError> {
    if labels.len() != g.node_count() {
        return Err(GraphError::Parse {
            line: 0,
            reason: format!(
                "label map has {} entries for {} nodes",
                labels.len(),
                g.node_count()
            ),
        });
    }
    let mut compact: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let mut super_node = Vec::with_capacity(labels.len());
    for &l in labels {
        let next = compact.len() as u32;
        let id = *compact.entry(l).or_insert(next);
        super_node.push(NodeId::new(id));
    }
    let k = compact.len();
    let edges = g.edge_tuples().filter_map(|(_, u, v, w)| {
        let (a, b) = (super_node[u.index()], super_node[v.index()]);
        (a != b).then_some((a.raw(), b.raw(), w))
    });
    let graph = WeightedGraph::from_edges(k, edges)?;
    Ok(Contraction { graph, super_node })
}

/// Keeps each edge independently with probability `p` using the supplied
/// random source; returns the edge mask. Deterministic given the RNG state.
pub fn bernoulli_edge_mask<R: rand::Rng>(g: &WeightedGraph, p: f64, rng: &mut R) -> Vec<bool> {
    g.edges().map(|_| rng.gen_bool(p.clamp(0.0, 1.0))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn k4() -> WeightedGraph {
        WeightedGraph::from_edges(
            4,
            [
                (0, 1, 1),
                (0, 2, 2),
                (0, 3, 3),
                (1, 2, 4),
                (1, 3, 5),
                (2, 3, 6),
            ],
        )
        .unwrap()
    }

    #[test]
    fn subgraph_keeps_selected_edges() {
        let g = k4();
        let mut keep = vec![false; 6];
        keep[0] = true; // (0,1)
        keep[5] = true; // (2,3)
        let s = edge_subgraph(&g, &keep);
        assert_eq!(s.node_count(), 4);
        assert_eq!(s.edge_count(), 2);
        assert!(s.edge_between(NodeId::new(0), NodeId::new(1)).is_some());
        assert!(s.edge_between(NodeId::new(2), NodeId::new(3)).is_some());
        assert!(s.edge_between(NodeId::new(0), NodeId::new(2)).is_none());
    }

    #[test]
    fn reweight_drops_zero() {
        let g = k4();
        // Canonical edge order for k4 is (0,1), (0,2), (0,3), (1,2), (1,3),
        // (2,3); keeping even ids keeps weights 1, 3, 5.
        let r = reweight(&g, |e, w| if e.index() % 2 == 0 { w * 10 } else { 0 });
        assert_eq!(r.edge_count(), 3);
        assert_eq!(r.total_weight(), (1 + 3 + 5) * 10);
    }

    #[test]
    fn contraction_merges_groups() {
        let g = k4();
        // Merge {0,1} and {2,3}.
        let c = contract_by_labels(&g, &[7, 7, 9, 9]).unwrap();
        assert_eq!(c.graph.node_count(), 2);
        assert_eq!(c.graph.edge_count(), 1);
        // Crossing edges: (0,2)=2, (0,3)=3, (1,2)=4, (1,3)=5 → 14.
        assert_eq!(c.graph.total_weight(), 14);
        assert_eq!(c.super_node[0], c.super_node[1]);
        assert_ne!(c.super_node[0], c.super_node[2]);
    }

    #[test]
    fn contraction_rejects_bad_labels() {
        let g = k4();
        assert!(contract_by_labels(&g, &[0, 1]).is_err());
    }

    #[test]
    fn bernoulli_mask_extremes() {
        let g = k4();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(bernoulli_edge_mask(&g, 1.0, &mut rng).iter().all(|&b| b));
        assert!(bernoulli_edge_mask(&g, 0.0, &mut rng).iter().all(|&b| !b));
    }

    #[test]
    fn contraction_to_single_node() {
        let g = k4();
        let c = contract_by_labels(&g, &[1, 1, 1, 1]).unwrap();
        assert_eq!(c.graph.node_count(), 1);
        assert_eq!(c.graph.edge_count(), 0);
    }
}
