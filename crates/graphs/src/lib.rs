//! Weighted undirected graphs for the distributed minimum-cut reproduction.
//!
//! This crate provides the graph substrate used by every other crate in the
//! workspace:
//!
//! * [`WeightedGraph`] — a compact CSR (compressed sparse row) representation
//!   of a simple, undirected, integer-weighted graph, built through
//!   [`GraphBuilder`];
//! * [`generators`] — the graph families used by the experiment suite
//!   (random connected, tori, expanders, planted-cut instances,
//!   lower-bound instances, …);
//! * [`traversal`] — BFS/DFS, connected components, diameter;
//! * [`cut`] — evaluating the value of a cut given one side;
//! * [`ops`] — subgraph sampling and contraction helpers;
//! * [`io`] — a plain-text edge-list format.
//!
//! # Example
//!
//! ```
//! use graphs::{GraphBuilder, NodeId};
//!
//! # fn main() -> Result<(), graphs::GraphError> {
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 3);
//! b.add_edge(1, 2, 1);
//! b.add_edge(2, 3, 2);
//! b.add_edge(3, 0, 1);
//! let g = b.build()?;
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.edge_count(), 4);
//! assert_eq!(g.weighted_degree(NodeId::new(0)), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cut;
pub mod generators;
mod graph;
pub mod io;
pub mod ops;
pub mod traversal;

pub use cut::{cut_of_side, CutResult};
pub use graph::{AdjEntry, GraphBuilder, GraphError, WeightedGraph};

use std::fmt;

/// Edge weights are unsigned 64-bit integers.
///
/// The CONGEST model assumes weights are polynomial in `n` so they fit in
/// `O(log n)`-bit messages; we do not enforce that bound here, but the
/// simulator's bit accounting charges for the actual magnitude.
pub type Weight = u64;

/// Identifier of a node: a dense index in `0..n`.
///
/// In the CONGEST model every node has a unique `O(log n)`-bit identifier;
/// we use the dense index itself, which is the standard choice for
/// simulators (the algorithms only compare identifiers).
#[derive(
    Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a raw index.
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Creates a node identifier from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` exceeds `u32::MAX`.
    pub fn from_index(idx: usize) -> Self {
        NodeId(u32::try_from(idx).expect("node index exceeds u32::MAX"))
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the index as `usize`, suitable for indexing per-node arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

/// Identifier of an undirected edge: a dense index in `0..m`.
#[derive(
    Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge identifier from a raw index.
    pub const fn new(raw: u32) -> Self {
        EdgeId(raw)
    }

    /// Creates an edge identifier from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` exceeds `u32::MAX`.
    pub fn from_index(idx: usize) -> Self {
        EdgeId(u32::try_from(idx).expect("edge index exceeds u32::MAX"))
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the index as `usize`, suitable for indexing per-edge arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for EdgeId {
    fn from(raw: u32) -> Self {
        EdgeId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(NodeId::new(42), v);
        assert_eq!(format!("{v}"), "42");
        assert_eq!(format!("{v:?}"), "n42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::from_index(7);
        assert_eq!(e.index(), 7);
        assert_eq!(format!("{e}"), "7");
        assert_eq!(format!("{e:?}"), "e7");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(3) > EdgeId::new(1));
    }
}
