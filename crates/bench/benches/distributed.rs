//! Criterion benches of the end-to-end distributed pipeline (wall-clock
//! simulation cost; CONGEST rounds are reported by the E-binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::generators;
use mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut::seq::tree_packing::{PackingConfig, PackingSize};

fn single_tree_config() -> ExactConfig {
    ExactConfig {
        packing: PackingConfig {
            size: PackingSize::Fixed(1),
            max_trees: 1,
        },
        ..Default::default()
    }
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_pipeline");
    group.sample_size(10);
    for side in [6usize, 10] {
        let g = generators::torus2d(side, side).unwrap();
        group.bench_with_input(
            BenchmarkId::new("one_tree_iteration", g.node_count()),
            &g,
            |b, g| {
                let cfg = single_tree_config();
                b.iter(|| exact_mincut(g, &cfg).unwrap().rounds)
            },
        );
    }
    let planted = generators::clique_pair(10, 3).unwrap();
    group.bench_with_input(
        BenchmarkId::new("exact_full", planted.graph.node_count()),
        &planted.graph,
        |b, g| b.iter(|| exact_mincut(g, &ExactConfig::default()).unwrap().cut.value),
    );
    group.finish();
}

criterion_group!(benches, bench_distributed);
criterion_main!(benches);
