//! Criterion benches of the CONGEST engine and its primitives (simulation
//! throughput, not round counts).

use congest::primitives::convergecast::{Convergecast, SumU64};
use congest::primitives::leader_bfs::LeaderBfs;
use congest::{Network, NetworkConfig, TreeInfo};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::generators;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("congest_engine");
    group.sample_size(10);
    for side in [16usize, 32] {
        let g = generators::torus2d(side, side).unwrap();
        let n = g.node_count();
        group.bench_with_input(BenchmarkId::new("leader_bfs", n), &g, |b, g| {
            b.iter(|| {
                let mut net = Network::new(g, NetworkConfig::default()).unwrap();
                net.run("leader_bfs", &LeaderBfs::new(), vec![(); g.node_count()])
                    .unwrap()
                    .metrics
                    .rounds
            })
        });
        group.bench_with_input(BenchmarkId::new("convergecast", n), &g, |b, g| {
            let mut net = Network::new(g, NetworkConfig::default()).unwrap();
            let trees: Vec<TreeInfo> = net
                .run("leader_bfs", &LeaderBfs::new(), vec![(); g.node_count()])
                .unwrap()
                .outputs
                .into_iter()
                .map(|o| o.tree)
                .collect();
            b.iter(|| {
                let inputs: Vec<(TreeInfo, SumU64)> = trees
                    .iter()
                    .enumerate()
                    .map(|(v, t)| (t.clone(), SumU64(v as u64)))
                    .collect();
                net.run("sum", &Convergecast::new(), inputs)
                    .unwrap()
                    .metrics
                    .rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
