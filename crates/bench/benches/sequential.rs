//! Criterion benches of the sequential algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::generators;
use mincut::seq;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance(n: usize) -> graphs::WeightedGraph {
    let mut rng = StdRng::seed_from_u64(11);
    let base = generators::erdos_renyi_connected(n, 8.0 / n as f64, &mut rng).unwrap();
    generators::randomize_weights(&base, 1, 16, &mut rng).unwrap()
}

fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_mincut");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let g = instance(n);
        group.bench_with_input(BenchmarkId::new("stoer_wagner", n), &g, |b, g| {
            b.iter(|| seq::stoer_wagner(g).unwrap().value)
        });
        group.bench_with_input(BenchmarkId::new("karger_stein", n), &g, |b, g| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| seq::karger_stein(g, &mut rng).unwrap().value)
        });
        group.bench_with_input(BenchmarkId::new("packing_mincut", n), &g, |b, g| {
            b.iter(|| {
                seq::packing_mincut(g, &Default::default())
                    .unwrap()
                    .cut
                    .value
            })
        });
        group.bench_with_input(BenchmarkId::new("matula_2eps", n), &g, |b, g| {
            b.iter(|| seq::matula_estimate(g, 0.5).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sequential);
criterion_main!(benches);
