//! Criterion benches of Karger's 1-respecting dynamic program (Lemma 5.9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::{generators, NodeId};
use mincut::seq::karger_dp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trees::spanning::{random_spanning_edges, to_rooted};

fn bench_one_respect(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_respecting_dp");
    group.sample_size(10);
    for n in [128usize, 512, 2048] {
        let mut rng = StdRng::seed_from_u64(13);
        let base = generators::erdos_renyi_connected(n, 10.0 / n as f64, &mut rng).unwrap();
        let g = generators::randomize_weights(&base, 1, 8, &mut rng).unwrap();
        let edges = random_spanning_edges(&g, &mut rng);
        let tree = to_rooted(&g, &edges, NodeId::new(0)).unwrap();
        group.bench_with_input(
            BenchmarkId::new("euler_lca", n),
            &(&g, &tree),
            |b, (g, t)| b.iter(|| karger_dp::one_respecting_cuts(g, t)),
        );
        if n <= 512 {
            group.bench_with_input(
                BenchmarkId::new("brute_nm", n),
                &(&g, &tree),
                |b, (g, t)| b.iter(|| karger_dp::one_respecting_cuts_brute(g, t)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_one_respect);
criterion_main!(benches);
