//! Experiment harness: table formatting and shared runners for the
//! experiment binaries (E1–E9) that regenerate the evaluation described in
//! DESIGN.md / EXPERIMENTS.md.

use graphs::WeightedGraph;
use mincut::dist::driver::{exact_mincut, DistMinCutResult, ExactConfig};
use mincut::seq::tree_packing::{PackingConfig, PackingSize};

/// The canonical deterministic fault plan of the CI harness: 5% drops,
/// 2.5% duplication, delay window 2, fixed seed. `bench_smoke`'s faulty
/// rows and `message_gate`'s synchronizer-overhead budget measure the
/// *same* plan, so the tracked curve and the gated number cannot drift
/// apart.
pub const SMOKE_FAULTS: congest::sim::FaultPlan = congest::sim::FaultPlan {
    seed: 0xBE7C4,
    drop_per_mille: 50,
    dup_per_mille: 25,
    max_delay: 2,
    resend_after: 4,
    max_attempts: 64,
    crashes: Vec::new(),
    parked: Vec::new(),
    partitions: Vec::new(),
    corrupt_per_mille: 0,
    suspect_patience: congest::sim::DEFAULT_SUSPECT_PATIENCE,
    on_suspect: congest::sim::SuspicionPolicy::Abort,
};

/// The canonical crash schedule of the chaos harness: kill node 0 — the
/// leader under the min-id election — mid-`mstA` on the canonical chaos
/// instance. On `torus24x24` the pipeline's virtual-round schedule puts
/// `leader_bfs` at rounds 0..86, `init.deg` at 86..111, and the first
/// MST fragment-growth level `mstA.l0.*` at 111..116, so round 114 lands
/// inside `mstA.l0.hook`; `chaos_gate` asserts the aborted phase on
/// every CI run, so a drift in the phase spans is caught, not silently
/// tolerated. Layered on [`SMOKE_FAULTS`] by [`chaos_plan`] so the chaos
/// rows and the CI gate measure the same adversary.
pub const SMOKE_CRASHES: &[congest::sim::CrashEvent] = &[congest::sim::CrashEvent {
    node: 0,
    at_round: 114,
    rejoin: None,
}];

/// [`SMOKE_FAULTS`] with the [`SMOKE_CRASHES`] schedule armed — the
/// adversary of `bench_smoke`'s chaos rows and of the `chaos_gate` CI
/// binary.
pub fn chaos_plan() -> congest::sim::FaultPlan {
    congest::sim::FaultPlan {
        crashes: SMOKE_CRASHES.to_vec(),
        ..SMOKE_FAULTS
    }
}

/// The canonical large-`n` instance: the 70602-node 3D torus + chords
/// with certified λ = 6 that `tests/large_n.rs` gates (the umbrella
/// crate cannot depend on this one, so that test re-states the
/// constructor — keep them in sync). `bench_smoke --large` measures it
/// and `message_gate` enforces its election message budget, so the
/// guarded and the measured workloads cannot drift apart.
pub fn large_n_graph() -> WeightedGraph {
    graphs::generators::torus3d_with_chords(42, 41, 41, 300).expect("valid torus construction")
}

/// Prints a markdown table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map(String::len).unwrap_or(0))
                .chain([h.len()])
                .max()
                .unwrap_or(h.len())
        })
        .collect();
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for r in rows {
        line(r.clone());
    }
    println!();
}

/// `√n + D` — the paper's scaling unit for a graph.
pub fn scaling_unit(g: &WeightedGraph) -> f64 {
    let d = graphs::traversal::two_sweep_diameter(g) as f64;
    (g.node_count() as f64).sqrt() + d
}

/// Runs the exact distributed algorithm with a single packed tree — the
/// cost of one MST + orientation + 1-respecting stage (Theorem 2.1 plus
/// the MST), which is what the scaling experiments measure.
pub fn single_tree_run(g: &WeightedGraph) -> DistMinCutResult {
    let cfg = ExactConfig {
        packing: PackingConfig {
            size: PackingSize::Fixed(1),
            max_trees: 1,
        },
        ..Default::default()
    };
    exact_mincut(g, &cfg).expect("single-tree run")
}

/// Formats a float with the given precision.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Experiment header banner.
pub fn banner(id: &str, claim: &str) {
    println!("## {id} — {claim}");
    println!();
}
