//! E10 (extension) — 2-respecting cuts remove the `poly(λ)` exactness
//! caveat: `⌈2 ln n⌉` trees suffice where the 1-respecting heuristic packs
//! `Θ(λ log n)`.

use graphs::generators;
use mincut::seq::{packing_mincut, packing_mincut_two_respect, stoer_wagner};
use mincut_bench::{banner, table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E10",
        "extension: 2-respecting scans are exact with O(log n) trees, independent of λ",
    );
    let mut rng = StdRng::seed_from_u64(10);
    let mut rows = Vec::new();
    for lambda in [2usize, 4, 8, 12] {
        let p = generators::community_pair(20, 14, lambda, &mut rng).unwrap();
        let g = p.graph;
        let n = g.node_count();
        let opt = stoer_wagner(&g).unwrap().value;
        let trees2 = (2.0 * (n as f64).ln()).ceil() as usize;
        let two = packing_mincut_two_respect(&g, trees2).unwrap();
        let one = packing_mincut(&g, &Default::default()).unwrap();
        rows.push(vec![
            lambda.to_string(),
            opt.to_string(),
            format!("{} ({} trees)", one.cut.value, one.trees_packed),
            format!("{} ({} trees)", two.value, trees2),
            if two.value == opt {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    table(
        &[
            "λ (planted)",
            "λ (oracle)",
            "1-respecting (λ-scaled packing)",
            "2-respecting (log n trees)",
            "2-resp exact",
        ],
        &rows,
    );
    println!("shape check: the 2-respecting column stays exact with a fixed O(log n) tree budget while the 1-respecting budget grows with λ.");
}
