//! CI message-volume regression gate for the election phase.
//!
//! Runs the staged `leader_bfs` on the canonical 70602-node large-`n`
//! instance (the exact graph `tests/large_n.rs` and `bench_smoke
//! --large` use) and fails — exit code 1 — if its message count exceeds
//! the checked-in budget, so the staged election's order-of-magnitude
//! win cannot silently regress. The legacy protocol is measured in the
//! same run and the staged/legacy ratio is enforced too, pinning the win
//! itself rather than just an absolute number.
//!
//! Both protocols are deterministic (no randomness anywhere in the
//! election), so these gates are exact, not flaky thresholds.

use congest::primitives::leader_bfs::LeaderBfs;
use congest::{Network, NetworkConfig};
use std::process::ExitCode;

/// Message budget for the staged election on the 70602-node instance.
/// Measured: 494,813 (vs 7,589,564 legacy — a 15.3× cut). The budget
/// leaves ~30% headroom for benign protocol tweaks; anything beyond that
/// is a regression of the staged election itself.
const STAGED_BUDGET: u64 = 650_000;

/// The staged election must stay at least this many times cheaper than
/// the legacy flood (the PR's acceptance criterion was 5×; measured
/// 15.3×, gated at 8× to leave room without letting the win erode).
const MIN_RATIO: u64 = 8;

fn count(g: &graphs::WeightedGraph, algo: &LeaderBfs) -> u64 {
    let mut net = Network::new(g, NetworkConfig::default()).expect("valid topology");
    net.run("leader_bfs", algo, vec![(); g.node_count()])
        .expect("election succeeds in strict mode")
        .metrics
        .messages
}

fn main() -> ExitCode {
    let g = mincut_bench::large_n_graph();
    let staged = count(&g, &LeaderBfs::new());
    let legacy = count(&g, &LeaderBfs::legacy());
    println!(
        "leader_bfs on n = {}: staged {staged} msgs, legacy {legacy} msgs ({:.1}x)",
        g.node_count(),
        legacy as f64 / staged as f64
    );
    let mut ok = true;
    if staged > STAGED_BUDGET {
        eprintln!(
            "GATE FAILED: staged leader_bfs moved {staged} messages > budget {STAGED_BUDGET}"
        );
        ok = false;
    }
    if staged * MIN_RATIO > legacy {
        eprintln!("GATE FAILED: staged/legacy ratio fell below {MIN_RATIO}x");
        ok = false;
    }
    if ok {
        println!("message gate passed (budget {STAGED_BUDGET}, min ratio {MIN_RATIO}x)");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
