//! CI regression gates for message volume and synchronizer overhead.
//!
//! Two deterministic gates, both exact (no flaky thresholds):
//!
//! 1. **Election messages** — the staged `leader_bfs` on the canonical
//!    70602-node large-`n` instance must stay under a checked-in budget
//!    *and* at least 8× cheaper than the legacy flood, so the staged
//!    election's order-of-magnitude win cannot silently regress.
//! 2. **Synchronizer overhead** — the whole exact pipeline on
//!    torus24x24 under the fault-injecting executor (the shared
//!    [`mincut_bench::SMOKE_FAULTS`] plan: 5% drops, 2.5% duplication,
//!    delay window 2, fixed seed) must finish within a checked-in
//!    factor of the serial run's rounds, pinning what asynchrony costs
//!    the paper's `O(D + √n·polylog n)` bound in this harness. The run
//!    double-checks bit parity of the cut on the way.
//! 3. **mstA messages** — the optimized phase-A fragment growth
//!    (frozen-level skip + fused cand/dec + deterministic mating) must
//!    stay under a checked-in `mstA` message budget on torus24x24 *and*
//!    on the canonical 70602-node instance, and at most half of what
//!    the legacy phase A moves on the same graph. Both runs must agree
//!    on the cut bit-for-bit, so the optimization can never trade
//!    correctness for traffic.

use congest::primitives::leader_bfs::LeaderBfs;
use congest::{ExecutorKind, Network, NetworkConfig};
use graphs::generators;
use mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut::dist::mst::{MstAMode, MstConfig};
use mincut::seq::tree_packing::{PackingConfig, PackingSize};
use std::process::ExitCode;

/// Message budget for the staged election on the 70602-node instance.
/// Measured: 494,813 (vs 7,589,564 legacy — a 15.3× cut). The budget
/// leaves ~30% headroom for benign protocol tweaks; anything beyond that
/// is a regression of the staged election itself.
const STAGED_BUDGET: u64 = 650_000;

/// The staged election must stay at least this many times cheaper than
/// the legacy flood (the PR's acceptance criterion was 5×; measured
/// 15.3×, gated at 8× to leave room without letting the win erode).
const MIN_RATIO: u64 = 8;

/// Synchronizer-overhead budget: physical transport rounds of the full
/// exact pipeline on torus24x24 under [`mincut_bench::SMOKE_FAULTS`],
/// divided by the serial run's rounds, must stay below this factor
/// (×100 — integer arithmetic on a deterministic measurement).
/// Measured: 7.92× (the fault-free α-synchronizer floor is 3.09× — the
/// data → ack → safe-announce chain is three ticks per round — and the
/// plan's 5% drops at retransmit timeout 4 contribute the rest). The
/// budget leaves ~25% headroom for benign protocol tweaks; a
/// synchronizer regression (a lost piggybacking opportunity costs a
/// whole tick per round per phase, ≥ +30%) blows well past it.
const MAX_OVERHEAD_PCT: u64 = 1000;

/// `mstA` message budget for the optimized phase A on torus24x24 with
/// the canonical 3-tree packing (the instance BENCH_rounds.json tracks).
/// Measured: 26,046 vs 54,077 legacy (a 2.08× cut). The budget is the
/// PR's acceptance bar — half of legacy, rounded to a stable figure —
/// so the win cannot erode below 2×.
const MSTA_TORUS_BUDGET: u64 = 27_000;

/// `mstA` message budget for the optimized phase A on the 70602-node
/// instance (single packed tree, the `tests/large_n.rs` workload).
/// Measured: 1,657,900 vs 3,376,228 legacy (a 2.04× cut); the budget
/// leaves ~2.5% headroom — the ≤½·legacy ratio check is the real bar,
/// this pins the absolute figure against drift.
const MSTA_LARGE_BUDGET: u64 = 1_700_000;

/// The mstA gate: run the exact pipeline twice (legacy and optimized
/// phase A), check bit parity of the cut, and return both `mstA`
/// message totals.
fn msta_probe(g: &graphs::WeightedGraph, base: &ExactConfig, label: &str) -> (u64, u64) {
    let run = |mode: MstAMode| {
        let cfg = ExactConfig {
            mst: MstConfig {
                mode,
                ..base.mst.clone()
            },
            ..base.clone()
        };
        exact_mincut(g, &cfg).expect("exact run succeeds")
    };
    let legacy = run(MstAMode::Legacy);
    let opt = run(MstAMode::Optimized);
    assert_eq!(
        (opt.cut.value, opt.cut.side.clone(), opt.trees_packed),
        (
            legacy.cut.value,
            legacy.cut.side.clone(),
            legacy.trees_packed
        ),
        "{label}: optimized phase A must be bit-identical to legacy"
    );
    (
        legacy.ledger.messages_matching("mstA"),
        opt.ledger.messages_matching("mstA"),
    )
}

fn count(g: &graphs::WeightedGraph, algo: &LeaderBfs) -> u64 {
    let mut net = Network::new(g, NetworkConfig::default()).expect("valid topology");
    net.run("leader_bfs", algo, vec![(); g.node_count()])
        .expect("election succeeds in strict mode")
        .metrics
        .messages
}

/// The synchronizer-overhead gate: serial vs faulty exact pipeline on
/// torus24x24. Returns `(serial rounds, faulty physical rounds)`.
fn overhead_probe() -> (u64, u64) {
    let g = generators::torus2d(24, 24).expect("valid torus");
    let serial = exact_mincut(&g, &ExactConfig::default()).expect("serial run succeeds");
    let cfg =
        ExactConfig::default().with_executor(ExecutorKind::Faulty(mincut_bench::SMOKE_FAULTS));
    let faulty = exact_mincut(&g, &cfg).expect("faulty run succeeds");
    assert_eq!(
        (faulty.cut.value, faulty.rounds, faulty.messages),
        (serial.cut.value, serial.rounds, serial.messages),
        "faulty executor must be bit-identical at the payload level"
    );
    (serial.rounds, faulty.ledger.total_phys_rounds())
}

fn main() -> ExitCode {
    let g = mincut_bench::large_n_graph();
    let staged = count(&g, &LeaderBfs::new());
    let legacy = count(&g, &LeaderBfs::legacy());
    println!(
        "leader_bfs on n = {}: staged {staged} msgs, legacy {legacy} msgs ({:.1}x)",
        g.node_count(),
        legacy as f64 / staged as f64
    );
    let mut ok = true;
    if staged > STAGED_BUDGET {
        eprintln!(
            "GATE FAILED: staged leader_bfs moved {staged} messages > budget {STAGED_BUDGET}"
        );
        ok = false;
    }
    if staged * MIN_RATIO > legacy {
        eprintln!("GATE FAILED: staged/legacy ratio fell below {MIN_RATIO}x");
        ok = false;
    }
    // Gate 3a: mstA on torus24x24 with the canonical 3-tree packing.
    let torus = generators::torus2d(24, 24).expect("valid torus");
    let torus_cfg = ExactConfig {
        packing: PackingConfig {
            size: PackingSize::Fixed(3),
            max_trees: 3,
        },
        ..Default::default()
    };
    let (leg_t, opt_t) = msta_probe(&torus, &torus_cfg, "torus24x24");
    println!(
        "mstA on torus24x24: optimized {opt_t} msgs, legacy {leg_t} msgs ({:.2}x)",
        leg_t as f64 / opt_t as f64
    );
    if opt_t > MSTA_TORUS_BUDGET {
        eprintln!("GATE FAILED: mstA moved {opt_t} messages > budget {MSTA_TORUS_BUDGET}");
        ok = false;
    }
    if opt_t * 2 > leg_t {
        eprintln!("GATE FAILED: optimized mstA ({opt_t}) exceeds half of legacy ({leg_t})");
        ok = false;
    }
    // Gate 3b: mstA on the 70602-node instance (single packed tree, the
    // large-n workload; parallel executor — parity-guaranteed — for
    // wall-clock).
    let large_cfg = ExactConfig {
        packing: PackingConfig {
            size: PackingSize::Fixed(1),
            max_trees: 1,
        },
        ..Default::default()
    }
    .with_executor(ExecutorKind::Parallel { threads: 4 });
    let (leg_l, opt_l) = msta_probe(&g, &large_cfg, "large_n");
    println!(
        "mstA on n = {}: optimized {opt_l} msgs, legacy {leg_l} msgs ({:.2}x)",
        g.node_count(),
        leg_l as f64 / opt_l as f64
    );
    if opt_l > MSTA_LARGE_BUDGET {
        eprintln!("GATE FAILED: mstA moved {opt_l} messages > budget {MSTA_LARGE_BUDGET}");
        ok = false;
    }
    if opt_l * 2 > leg_l {
        eprintln!("GATE FAILED: optimized mstA ({opt_l}) exceeds half of legacy ({leg_l})");
        ok = false;
    }
    let (serial_rounds, phys_rounds) = overhead_probe();
    println!(
        "exact pipeline on torus24x24: serial {serial_rounds} rounds, faulty {phys_rounds} transport rounds ({:.2}x overhead)",
        phys_rounds as f64 / serial_rounds as f64
    );
    if phys_rounds * 100 > serial_rounds * MAX_OVERHEAD_PCT {
        eprintln!(
            "GATE FAILED: synchronizer overhead {phys_rounds}/{serial_rounds} rounds exceeds {}.{:02}x budget",
            MAX_OVERHEAD_PCT / 100,
            MAX_OVERHEAD_PCT % 100
        );
        ok = false;
    }
    if ok {
        println!(
            "message gate passed (budget {STAGED_BUDGET}, min ratio {MIN_RATIO}x, overhead ≤ {}.{:02}x)",
            MAX_OVERHEAD_PCT / 100,
            MAX_OVERHEAD_PCT % 100
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
