//! E1 — Exactness of the `Õ((√n+D)·poly(λ))` algorithm and the number of
//! trees the greedy packing actually needs (vs Thorup's `λ⁷log³n` bound).

use graphs::generators;
use mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut::seq::stoer_wagner;
use mincut_bench::{banner, table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E1",
        "exactness across families; trees needed in practice vs Thorup's bound",
    );
    let mut rng = StdRng::seed_from_u64(1);
    let mut cases: Vec<(String, graphs::WeightedGraph)> = vec![
        ("cycle(32)".into(), generators::cycle(32).unwrap()),
        ("grid(6x8)".into(), generators::grid2d(6, 8).unwrap()),
        ("torus(6x6)".into(), generators::torus2d(6, 6).unwrap()),
        ("hypercube(6)".into(), generators::hypercube(6).unwrap()),
        (
            "clique_pair(10,4)".into(),
            generators::clique_pair(10, 4).unwrap().graph,
        ),
        (
            "barbell(7,6)".into(),
            generators::barbell(7, 6).unwrap().graph,
        ),
        (
            "das_sarma(3,8)".into(),
            generators::das_sarma_style(3, 8).unwrap(),
        ),
    ];
    for i in 0..4 {
        let base = generators::erdos_renyi_connected(40, 0.15, &mut rng).unwrap();
        let g = generators::randomize_weights(&base, 1, 6, &mut rng).unwrap();
        cases.push((format!("gnp(40,.15)#{i}"), g));
    }
    for lam in [2usize, 4] {
        let p = generators::community_pair(20, 6, lam, &mut rng).unwrap();
        cases.push((format!("community(λ={lam})"), p.graph));
    }

    let mut rows = Vec::new();
    let mut exact = 0;
    let thorup =
        |lambda: u64, n: usize| -> f64 { (lambda.max(1) as f64).powi(7) * (n as f64).ln().powi(3) };
    for (name, g) in &cases {
        let want = stoer_wagner(g).unwrap().value;
        let r = exact_mincut(g, &ExactConfig::default()).unwrap();
        let ok = r.cut.value == want;
        exact += ok as usize;
        rows.push(vec![
            name.clone(),
            g.node_count().to_string(),
            want.to_string(),
            r.cut.value.to_string(),
            if ok { "yes".into() } else { "NO".into() },
            r.trees_to_best.to_string(),
            r.trees_packed.to_string(),
            format!("{:.1e}", thorup(want, g.node_count())),
        ]);
    }
    table(
        &[
            "instance",
            "n",
            "λ (oracle)",
            "λ (dist)",
            "exact",
            "trees→best",
            "trees packed",
            "Thorup bound",
        ],
        &rows,
    );
    println!(
        "exactness: {exact}/{} instances; the heuristic packing needs a handful of trees where the theorem asks for λ⁷log³n.",
        cases.len()
    );
}
