//! CI chaos gate: the self-healing driver must survive the canonical
//! leader assassination — deterministically, exactly, and within
//! checked-in budgets.
//!
//! The adversary is the shared [`mincut_bench::chaos_plan`]: the
//! `SMOKE_FAULTS` link faults (5% drops, 2.5% duplication, delay window
//! 2, fixed seed) plus the `SMOKE_CRASHES` schedule, which kills node 0
//! — the leader under the min-id election — at virtual round 114 of the
//! `torus24x24` pipeline, inside the first MST fragment-growth level
//! (`mstA.l0.*`). The gate asserts, with no tolerance:
//!
//! 1. **The kill landed where the schedule says.** The aborted phase of
//!    the first attempt (the `recover.e1.*` ledger row immediately
//!    before the census) is an `mstA` phase — so a drift in the
//!    pipeline's phase spans moves the crash out of the MST and fails
//!    CI instead of silently degrading the scenario.
//! 2. **Exact recovery.** Two epochs, dead set `{0}`, 575 survivors,
//!    and the recovered λ equals the sequential Stoer–Wagner oracle on
//!    the surviving subgraph (= 3: excising a torus node leaves its
//!    neighbors with degree 3). Zero false suspicions.
//! 3. **Determinism.** A second run produces a byte-identical merged
//!    ledger.
//! 4. **Budgets.** Recovery rounds and the recovery share of the
//!    message bill stay under checked-in ceilings, so the cost of
//!    healing cannot silently balloon.

use graphs::generators;
use mincut::dist::{recover_mincut, RecoverConfig, RecoveredMinCut};
use std::process::ExitCode;

/// Budget on rounds spent healing (aborted attempt + census). Measured:
/// 170 (86 `leader_bfs` + 25 `init.deg` + the `mstA.l0` stump + a
/// 56-tick census). The headroom covers benign election/census tweaks;
/// a detection regression (a second wasted attempt, a slower census)
/// blows past it.
const MAX_RECOVERY_ROUNDS: u64 = 400;

/// Budget on recovery's share of the total message bill, in tenths of a
/// percent. Measured: 0.24% — healing one crash costs a quarter of a
/// percent of the session. Gated at 2%.
const MAX_RECOVERY_MSG_PER_MILLE: u64 = 20;

fn run() -> RecoveredMinCut {
    let g = generators::torus2d(24, 24).expect("valid torus");
    let cfg = RecoverConfig::default().with_plan(mincut_bench::chaos_plan());
    recover_mincut(&g, &cfg).expect("the leader kill must be recoverable")
}

fn main() -> ExitCode {
    let r = run();
    println!(
        "chaos on torus24x24: λ = {} (oracle {:?}), epochs {}, dead {:?}, {} survivors",
        r.cut.value,
        r.oracle,
        r.epochs,
        r.dead,
        r.survivors.len()
    );
    println!(
        "recovery: {} of {} rounds, {} of {} messages ({:.2}%), {} false suspicions",
        r.recovery_rounds,
        r.rounds,
        r.recovery_messages,
        r.messages,
        100.0 * r.recovery_messages as f64 / r.messages.max(1) as f64,
        r.ledger.total_false_suspicions(),
    );
    let mut ok = true;

    // 1. The schedule still kills mid-mstA: the phase the suspicion
    // aborted is the last recovery row of epoch 1 before the census.
    let aborted = r
        .ledger
        .phases()
        .iter()
        .map(|p| p.name.as_str())
        .take_while(|name| *name != "recover.e1.census")
        .last()
        .unwrap_or("<none>");
    println!("aborted phase: {aborted}");
    if !aborted.starts_with("recover.e1.mstA.") {
        eprintln!(
            "GATE FAILED: the leader kill aborted {aborted}, not an mstA phase — \
             the pipeline's phase spans drifted; retune SMOKE_CRASHES"
        );
        ok = false;
    }

    // 2. Exact recovery of the surviving component's minimum cut.
    let dead: Vec<usize> = r.dead.iter().map(|v| v.index()).collect();
    if r.epochs != 2 || dead != [0] || r.survivors.len() != 575 {
        eprintln!(
            "GATE FAILED: expected 2 epochs, dead [0], 575 survivors; got {} epochs, dead {dead:?}, {} survivors",
            r.epochs,
            r.survivors.len()
        );
        ok = false;
    }
    if r.oracle != Some(r.cut.value) || r.cut.value != 3 {
        eprintln!(
            "GATE FAILED: recovered λ = {} (oracle {:?}); the surviving torus component has λ = 3",
            r.cut.value, r.oracle
        );
        ok = false;
    }
    if r.ledger.total_false_suspicions() != 0 {
        eprintln!(
            "GATE FAILED: {} live nodes were falsely suspected",
            r.ledger.total_false_suspicions()
        );
        ok = false;
    }

    // 3. Same plan ⇒ byte-identical merged ledger.
    let again = run();
    if again.ledger.phases() != r.ledger.phases() {
        eprintln!("GATE FAILED: two identical chaos runs produced different ledgers");
        ok = false;
    }

    // 4. Healing stays cheap.
    if r.recovery_rounds > MAX_RECOVERY_ROUNDS {
        eprintln!(
            "GATE FAILED: recovery took {} rounds > budget {MAX_RECOVERY_ROUNDS}",
            r.recovery_rounds
        );
        ok = false;
    }
    if r.recovery_messages * 1000 > r.messages * MAX_RECOVERY_MSG_PER_MILLE {
        eprintln!(
            "GATE FAILED: recovery moved {} of {} messages, over the {}.{}% budget",
            r.recovery_messages,
            r.messages,
            MAX_RECOVERY_MSG_PER_MILLE / 10,
            MAX_RECOVERY_MSG_PER_MILLE % 10
        );
        ok = false;
    }

    if ok {
        println!(
            "chaos gate passed (recovery ≤ {MAX_RECOVERY_ROUNDS} rounds, ≤ {}.{}% of messages, deterministic)",
            MAX_RECOVERY_MSG_PER_MILLE / 10,
            MAX_RECOVERY_MSG_PER_MILLE % 10
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
