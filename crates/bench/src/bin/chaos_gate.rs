//! CI chaos gate: the self-healing driver must survive the canonical
//! adversaries — deterministically, exactly, and within checked-in
//! budgets. Four gated scenarios:
//!
//! 1. **Leader assassination** (the PR 6 scenario). The adversary is the
//!    shared [`mincut_bench::chaos_plan`]: the `SMOKE_FAULTS` link
//!    faults (5% drops, 2.5% duplication, delay window 2, fixed seed)
//!    plus the `SMOKE_CRASHES` schedule, which kills node 0 — the
//!    leader under the min-id election — at virtual round 114 of the
//!    `torus24x24` pipeline, inside the first MST fragment-growth level
//!    (`mstA.l0.*`). Asserted with no tolerance: the kill lands where
//!    the schedule says (the aborted phase is an `mstA` phase), exact
//!    recovery (two epochs, dead `{0}`, 575 survivors, λ = 3 = the
//!    Stoer–Wagner oracle, zero false suspicions), byte-identical
//!    ledgers across two runs, and recovery-cost budgets.
//! 2. **Checkpointed resume beats from-scratch.** On an engineered
//!    instance whose leader is a *leaf* of every packed tree (a
//!    torus8x8 relabeled to ids 1..65 plus a degree-1 node 0 — the
//!    min-id leader, but structurally never an interior tree node), the
//!    leader is killed mid-`packing` after four of five trees finished.
//!    The retry must resume from the MST checkpoint
//!    (`resumed_from = Packed(k)`, k ≥ 1) and its rebuild epoch must
//!    cost **≤ 50%** of the from-scratch rebuild
//!    (`checkpoint: false`, the PR 6 path) in both rounds and
//!    messages, at the same certified λ.
//! 3. **Rejoin.** A non-leader node dies mid-MST and its
//!    [`CrashEvent::rejoin`] comes due during the census; the driver
//!    must re-admit it through the `census.e1.join` handshake: nobody
//!    excised, λ of the *full* graph, one abort only.
//! 4. **Partition-then-heal.** A partition window shorter than the
//!    suspicion threshold opens and heals mid-election: no abort may
//!    fire (one epoch, zero recovery rounds), the frames blocked by the
//!    window are retransmitted invisibly, and λ is exact.
//!
//! Every scenario runs twice and must produce byte-identical merged
//! ledgers.

use congest::sim::{CrashEvent, FaultPlan};
use graphs::generators;
use graphs::WeightedGraph;
use mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut::dist::{recover_mincut, RecoverConfig, RecoveredMinCut, Stage};
use mincut::seq::tree_packing::{PackingConfig, PackingSize};
use std::process::ExitCode;

/// Budget on rounds spent healing (aborted attempt + census). Measured:
/// 170 (86 `leader_bfs` + 25 `init.deg` + the `mstA.l0` stump + a
/// 56-tick census). The headroom covers benign election/census tweaks;
/// a detection regression (a second wasted attempt, a slower census)
/// blows past it.
const MAX_RECOVERY_ROUNDS: u64 = 400;

/// Budget on recovery's share of the total message bill, in tenths of a
/// percent. Measured: 0.24% — healing one crash costs a quarter of a
/// percent of the session. Gated at 2%.
const MAX_RECOVERY_MSG_PER_MILLE: u64 = 20;

fn leader_kill() -> RecoveredMinCut {
    let g = generators::torus2d(24, 24).expect("valid torus");
    let cfg = RecoverConfig::default().with_plan(mincut_bench::chaos_plan());
    recover_mincut(&g, &cfg).expect("the leader kill must be recoverable")
}

/// Scenario 1: the canonical leader assassination, exact and budgeted.
fn gate_leader_kill() -> bool {
    let r = leader_kill();
    println!(
        "chaos on torus24x24: λ = {} (oracle {:?}), epochs {}, dead {:?}, {} survivors",
        r.cut.value,
        r.oracle,
        r.epochs,
        r.dead,
        r.survivors.len()
    );
    println!(
        "recovery: {} of {} rounds, {} of {} messages ({:.2}%), {} false suspicions",
        r.recovery_rounds,
        r.rounds,
        r.recovery_messages,
        r.messages,
        100.0 * r.recovery_messages as f64 / r.messages.max(1) as f64,
        r.ledger.total_false_suspicions(),
    );
    let mut ok = true;

    // The schedule still kills mid-mstA: the phase the suspicion
    // aborted is the last recovery row of epoch 1 before the census.
    let aborted = r
        .ledger
        .phases()
        .iter()
        .map(|p| p.name.as_str())
        .take_while(|name| !name.starts_with("census.e1."))
        .last()
        .unwrap_or("<none>");
    println!("aborted phase: {aborted}");
    if !aborted.starts_with("recover.e1.mstA.") {
        eprintln!(
            "GATE FAILED: the leader kill aborted {aborted}, not an mstA phase — \
             the pipeline's phase spans drifted; retune SMOKE_CRASHES"
        );
        ok = false;
    }

    // Exact recovery of the surviving component's minimum cut.
    let dead: Vec<usize> = r.dead.iter().map(|v| v.index()).collect();
    if r.epochs != 2 || dead != [0] || r.survivors.len() != 575 {
        eprintln!(
            "GATE FAILED: expected 2 epochs, dead [0], 575 survivors; got {} epochs, dead {dead:?}, {} survivors",
            r.epochs,
            r.survivors.len()
        );
        ok = false;
    }
    if r.oracle != Some(r.cut.value) || r.cut.value != 3 {
        eprintln!(
            "GATE FAILED: recovered λ = {} (oracle {:?}); the surviving torus component has λ = 3",
            r.cut.value, r.oracle
        );
        ok = false;
    }
    if r.ledger.total_false_suspicions() != 0 {
        eprintln!(
            "GATE FAILED: {} live nodes were falsely suspected",
            r.ledger.total_false_suspicions()
        );
        ok = false;
    }

    // Same plan ⇒ byte-identical merged ledger.
    let again = leader_kill();
    if again.ledger.phases() != r.ledger.phases() {
        eprintln!("GATE FAILED: two identical chaos runs produced different ledgers");
        ok = false;
    }

    // Healing stays cheap.
    if r.recovery_rounds > MAX_RECOVERY_ROUNDS {
        eprintln!(
            "GATE FAILED: recovery took {} rounds > budget {MAX_RECOVERY_ROUNDS}",
            r.recovery_rounds
        );
        ok = false;
    }
    if r.recovery_messages * 1000 > r.messages * MAX_RECOVERY_MSG_PER_MILLE {
        eprintln!(
            "GATE FAILED: recovery moved {} of {} messages, over the {}.{}% budget",
            r.recovery_messages,
            r.messages,
            MAX_RECOVERY_MSG_PER_MILLE / 10,
            MAX_RECOVERY_MSG_PER_MILLE % 10
        );
        ok = false;
    }
    ok
}

/// A clique pair (two 16-cliques over 3 bridges) relabeled to ids
/// 1..33 plus node 0 — the min-id leader — attached by exactly one
/// edge. A degree-1 node is in *every* spanning tree exactly through
/// that edge, so the leader's death never invalidates a checkpointed
/// tree — and because a pendant node's only edge crosses no survivor
/// subtree cut, the finished trees' 1-respecting minima survive the
/// excision verbatim and the resume replays them as trusted evidence
/// instead of re-running their cut stages. The edge is heavy (100 ≫ λ)
/// so the checkpointed argmin is a survivor edge, not the pendant's
/// own cut (a dead argmin would — correctly — void the evidence).
fn leafed_cliques() -> WeightedGraph {
    let base = generators::clique_pair(16, 3)
        .expect("valid clique pair")
        .graph;
    let mut edges: Vec<(u32, u32, u64)> = base
        .edge_tuples()
        .map(|(_, u, v, w)| (u.raw() + 1, v.raw() + 1, w))
        .collect();
    edges.push((0, 1, 100));
    WeightedGraph::from_edges(base.node_count() + 1, edges).expect("valid leafed cliques")
}

/// Scenario 2: the mid-packing leader kill must resume from the MST
/// checkpoint, and the resumed rebuild must cost ≤ 50% of from-scratch
/// in rounds AND messages.
fn gate_checkpoint_halving() -> bool {
    let g = leafed_cliques();
    let base = ExactConfig {
        packing: PackingConfig {
            size: PackingSize::Fixed(5),
            max_trees: 5,
        },
        ..Default::default()
    };
    // Probe the clean phase schedule: crash two rounds after the fourth
    // tree finishes (its "s5g" improvement broadcast), inside the fifth
    // tree's MST — four checkpointed trees on the books.
    let clean = exact_mincut(&g, &base).expect("clean probe");
    let mut finished = 0;
    let mut crash_at = 0u64;
    for p in clean.ledger.phases() {
        crash_at += p.rounds;
        if p.name == "s5g" {
            finished += 1;
            if finished == 4 {
                break;
            }
        }
    }
    let plan = FaultPlan::lossless().with_crash(0, crash_at + 2);
    let cfg = RecoverConfig {
        base: base.clone(),
        ..Default::default()
    }
    .with_plan(plan);
    let run_ckpt = || recover_mincut(&g, &cfg).expect("checkpointed recovery");
    let ckpt = run_ckpt();
    let scratch =
        recover_mincut(&g, &cfg.clone().with_checkpoint(false)).expect("from-scratch recovery");

    // Both paths abort once and excise the leader; the rebuild epoch is
    // everything past epoch 1's booked waste.
    let rebuild_rounds = |r: &RecoveredMinCut| r.rounds - r.wasted_rounds[0];
    let rebuild_msgs = |r: &RecoveredMinCut| r.messages - r.wasted_messages[0];
    println!(
        "checkpoint halving on leafed clique pair: resumed_from {:?}, rebuild {} vs {} rounds, {} vs {} messages",
        ckpt.resumed_from,
        rebuild_rounds(&ckpt),
        rebuild_rounds(&scratch),
        rebuild_msgs(&ckpt),
        rebuild_msgs(&scratch),
    );
    let mut ok = true;
    for (r, label, resumed) in [
        (&ckpt, "checkpointed", true),
        (&scratch, "from-scratch", false),
    ] {
        let dead: Vec<usize> = r.dead.iter().map(|v| v.index()).collect();
        if r.epochs != 2 || dead != [0] || r.survivors.len() != 32 {
            eprintln!(
                "GATE FAILED: {label}: expected 2 epochs, dead [0], 32 survivors; got {} epochs, dead {dead:?}, {} survivors",
                r.epochs,
                r.survivors.len()
            );
            ok = false;
        }
        if r.oracle != Some(r.cut.value) || r.cut.value != 3 {
            eprintln!(
                "GATE FAILED: {label}: λ = {} (oracle {:?}); the clique-pair remnant has λ = 3",
                r.cut.value, r.oracle
            );
            ok = false;
        }
        let want_resume = if resumed {
            "Some(Packed(k ≥ 1))"
        } else {
            "None"
        };
        let got_ok = match (resumed, r.resumed_from) {
            (true, Some(Stage::Packed(k))) => k >= 1,
            (false, None) => true,
            _ => false,
        };
        if !got_ok {
            eprintln!(
                "GATE FAILED: {label}: resumed_from = {:?}, want {want_resume}",
                r.resumed_from
            );
            ok = false;
        }
    }
    if 2 * rebuild_rounds(&ckpt) > rebuild_rounds(&scratch) {
        eprintln!(
            "GATE FAILED: checkpointed rebuild took {} rounds, over 50% of the {}-round from-scratch rebuild",
            rebuild_rounds(&ckpt),
            rebuild_rounds(&scratch)
        );
        ok = false;
    }
    if 2 * rebuild_msgs(&ckpt) > rebuild_msgs(&scratch) {
        eprintln!(
            "GATE FAILED: checkpointed rebuild moved {} messages, over 50% of the {}-message from-scratch rebuild",
            rebuild_msgs(&ckpt),
            rebuild_msgs(&scratch)
        );
        ok = false;
    }
    let again = run_ckpt();
    if again.ledger.phases() != ckpt.ledger.phases() {
        eprintln!("GATE FAILED: two identical checkpointed runs produced different ledgers");
        ok = false;
    }
    ok
}

/// Scenario 3: a scheduled rejoin is re-admitted through the join
/// handshake — nobody excised, λ of the full graph unchanged.
fn gate_rejoin() -> bool {
    let g = generators::torus2d(6, 6).expect("valid torus");
    let clean = exact_mincut(&g, &ExactConfig::default()).expect("clean probe");
    let crash_at: u64 = clean
        .ledger
        .phases()
        .iter()
        .take_while(|p| !p.name.starts_with("mstA"))
        .map(|p| p.rounds)
        .sum::<u64>()
        + 2;
    let plan = FaultPlan::lossless().with_crashes(vec![CrashEvent {
        node: 7,
        at_round: crash_at,
        rejoin: Some(crash_at + 20),
    }]);
    let cfg = RecoverConfig::default().with_plan(plan);
    let run = || recover_mincut(&g, &cfg).expect("rejoin recovery");
    let r = run();
    println!(
        "rejoin on torus6x6: λ = {} (oracle {:?}), epochs {}, rejoined {:?}, resumed_from {:?}",
        r.cut.value, r.oracle, r.epochs, r.rejoined, r.resumed_from
    );
    let mut ok = true;
    let rejoined: Vec<usize> = r.rejoined.iter().map(|v| v.index()).collect();
    if r.epochs != 2 || !r.dead.is_empty() || rejoined != [7] || r.survivors.len() != 36 {
        eprintln!(
            "GATE FAILED: expected 2 epochs, no dead, rejoined [7], 36 survivors; got {} epochs, dead {:?}, rejoined {rejoined:?}, {} survivors",
            r.epochs,
            r.dead,
            r.survivors.len()
        );
        ok = false;
    }
    if r.cut.value != clean.cut.value || r.oracle != Some(r.cut.value) {
        eprintln!(
            "GATE FAILED: λ = {} (oracle {:?}) after rejoin, want the full graph's {}",
            r.cut.value, r.oracle, clean.cut.value
        );
        ok = false;
    }
    if r.ledger.phases_matching("census.e1.join") == 0 {
        eprintln!("GATE FAILED: the rejoin handshake phase never ran");
        ok = false;
    }
    if r.resumed_from.is_none() {
        eprintln!("GATE FAILED: an unchanged participant set must resume from a checkpoint");
        ok = false;
    }
    let again = run();
    if again.ledger.phases() != r.ledger.phases() {
        eprintln!("GATE FAILED: two identical rejoin runs produced different ledgers");
        ok = false;
    }
    ok
}

/// Scenario 4: a partition window healing before the suspicion
/// threshold must be invisible to the driver — no abort, no recovery
/// rounds, exact λ.
fn gate_partition_heal() -> bool {
    let g = generators::torus2d(6, 6).expect("valid torus");
    // Three torus edges cut at tick 10, healed at 30 — 20 ticks of
    // silence against a 40-tick suspicion window.
    let plan = FaultPlan::lossless().with_partition(vec![(0, 1), (6, 7), (12, 13)], 10, 30);
    let cfg = RecoverConfig::default().with_plan(plan);
    let run = || recover_mincut(&g, &cfg).expect("healed partition must not abort");
    let r = run();
    println!(
        "partition-heal on torus6x6: λ = {} (oracle {:?}), epochs {}, {} partitioned frames",
        r.cut.value,
        r.oracle,
        r.epochs,
        r.ledger.total_partitioned()
    );
    let mut ok = true;
    if r.epochs != 1 || r.recovery_rounds != 0 || !r.dead.is_empty() || !r.rejoined.is_empty() {
        eprintln!(
            "GATE FAILED: a healed partition must cost zero epochs/rounds of recovery; got {} epochs, {} recovery rounds, dead {:?}, rejoined {:?}",
            r.epochs, r.recovery_rounds, r.dead, r.rejoined
        );
        ok = false;
    }
    if r.oracle != Some(r.cut.value) || r.cut.value != 4 {
        eprintln!(
            "GATE FAILED: λ = {} (oracle {:?}), want the torus6x6's 4",
            r.cut.value, r.oracle
        );
        ok = false;
    }
    if r.ledger.total_partitioned() == 0 {
        eprintln!("GATE FAILED: the window never blocked a frame — the scenario is vacuous");
        ok = false;
    }
    if r.ledger.total_false_suspicions() != 0 {
        eprintln!(
            "GATE FAILED: {} false suspicions — the window outlived the threshold",
            r.ledger.total_false_suspicions()
        );
        ok = false;
    }
    let again = run();
    if again.ledger.phases() != r.ledger.phases() {
        eprintln!("GATE FAILED: two identical partition runs produced different ledgers");
        ok = false;
    }
    ok
}

fn main() -> ExitCode {
    let mut ok = true;
    ok &= gate_leader_kill();
    ok &= gate_checkpoint_halving();
    ok &= gate_rejoin();
    ok &= gate_partition_heal();
    if ok {
        println!(
            "chaos gate passed (leader kill ≤ {MAX_RECOVERY_ROUNDS} rounds / ≤ {}.{}% of messages, \
             checkpoint rebuild ≤ 50% of from-scratch, rejoin re-admitted, healed partition free; \
             all deterministic)",
            MAX_RECOVERY_MSG_PER_MILLE / 10,
            MAX_RECOVERY_MSG_PER_MILLE % 10
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
