//! E4 — The headline: (1+ε) quality at Õ(√n + D) cost, versus the
//! (2+ε)-class baselines (GK-inspired distributed, Matula sequential).

use graphs::generators;
use mincut::dist::approx::{approx_mincut, ApproxConfig};
use mincut::dist::baselines::{gk_baseline, su_baseline, BaselineConfig};
use mincut::seq::{matula_estimate, stoer_wagner};
use mincut_bench::{banner, f, table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E4",
        "approximation ratios and rounds: (1+ε) vs (2+ε)-class baselines",
    );
    let mut rng = StdRng::seed_from_u64(4);
    let instances: Vec<(String, graphs::WeightedGraph)> = vec![
        (
            "community(24,8,λ=3)".into(),
            generators::community_pair(24, 8, 3, &mut rng)
                .unwrap()
                .graph,
        ),
        (
            "community(32,6,λ=4)".into(),
            generators::community_pair(32, 6, 4, &mut rng)
                .unwrap()
                .graph,
        ),
        ("torus(6x6)".into(), generators::torus2d(6, 6).unwrap()),
    ];

    for (name, g) in &instances {
        let opt = stoer_wagner(g).unwrap().value;
        println!("### {name} (n = {}, λ = {opt})", g.node_count());
        println!();
        let mut rows = Vec::new();
        for eps in [0.5, 0.25, 0.125] {
            let cfg = ApproxConfig {
                eps,
                ..Default::default()
            };
            let r = approx_mincut(g, &cfg).unwrap();
            rows.push(vec![
                format!("(1+ε) ε={eps}"),
                r.cut.value.to_string(),
                f(r.cut.value as f64 / opt as f64, 2),
                r.rounds.to_string(),
            ]);
        }
        let su = su_baseline(g, &BaselineConfig::default()).unwrap();
        rows.push(vec![
            "Su-inspired".into(),
            su.cut.value.to_string(),
            f(su.cut.value as f64 / opt as f64, 2),
            su.rounds.to_string(),
        ]);
        let gk = gk_baseline(g, &BaselineConfig::default()).unwrap();
        rows.push(vec![
            "GK-inspired".into(),
            gk.cut.value.to_string(),
            f(gk.cut.value as f64 / opt as f64, 2),
            gk.rounds.to_string(),
        ]);
        let mat = matula_estimate(g, 0.5).unwrap();
        rows.push(vec![
            "Matula (2+ε) seq".into(),
            mat.to_string(),
            f(mat as f64 / opt as f64, 2),
            "—".into(),
        ]);
        table(&["algorithm", "value", "ratio", "rounds"], &rows);
    }
    println!(
        "shape check: the (1+ε) rows sit at ratio ≈ 1.0; the (2+ε)-class rows drift up to 2×."
    );
}
