//! Runs every experiment (E1–E9) in sequence — the full evaluation.
//!
//! ```text
//! cargo run --release -p mincut-bench --bin run_all | tee results.md
//! ```

use std::process::Command;

fn main() {
    let bins = [
        "e1_correctness",
        "e2_scaling",
        "e3_lambda",
        "e4_approx",
        "e5_lowerbound",
        "e6_congestion",
        "e7_onerespect",
        "e8_ablation",
        "e9_baselines",
        "e10_two_respect",
    ];
    println!("# Distributed min-cut reproduction — full evaluation\n");
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        let path = dir.join(bin);
        let out = Command::new(&path)
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        print!("{}", String::from_utf8_lossy(&out.stdout));
        if !out.status.success() {
            eprintln!("{bin} FAILED:\n{}", String::from_utf8_lossy(&out.stderr));
            std::process::exit(1);
        }
    }
}
