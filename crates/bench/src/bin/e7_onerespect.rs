//! E7 — Theorem 2.1 in isolation: the 1-respecting stage costs Õ(√n + D)
//! **independent of the spanning tree's depth** — the fragment machinery is
//! what saves deep trees (a naive subtree aggregation would pay Θ(depth)).

use graphs::generators;
use mincut_bench::{banner, f, scaling_unit, single_tree_run, table};

fn main() {
    banner(
        "E7",
        "the 1-respecting stage is depth-independent (fragments beat naive aggregation)",
    );
    let mut rows = Vec::new();
    let cases: Vec<(String, graphs::WeightedGraph)> = vec![
        // Path: the MST is the path itself — tree depth Θ(n).
        (
            "path(100) [depth Θ(n)]".into(),
            generators::path(100).unwrap(),
        ),
        (
            "path(225) [depth Θ(n)]".into(),
            generators::path(225).unwrap(),
        ),
        // Caterpillar: deep spine with legs.
        (
            "caterpillar(50,2)".into(),
            generators::caterpillar(50, 2).unwrap(),
        ),
        // Torus: shallow BFS but the MST tree is what matters.
        ("torus(10x10)".into(), generators::torus2d(10, 10).unwrap()),
    ];
    for (name, g) in &cases {
        let r = single_tree_run(g);
        let unit = scaling_unit(g);
        // Per-stage breakdown from the ledger.
        let steps = r.ledger.rounds_matching("s2")
            + r.ledger.rounds_matching("s3")
            + r.ledger.rounds_matching("s4")
            + r.ledger.rounds_matching("s5");
        let mst = r.ledger.rounds_matching("mst");
        rows.push(vec![
            name.clone(),
            g.node_count().to_string(),
            f(unit, 1),
            mst.to_string(),
            steps.to_string(),
            f(steps as f64 / unit, 1),
        ]);
    }
    table(
        &[
            "instance",
            "n",
            "√n + D",
            "MST rounds",
            "steps 2–5 rounds",
            "steps/(√n+D)",
        ],
        &rows,
    );
    println!(
        "shape check: on paths the naive per-node aggregation would cost Θ(n·√n)-ish rounds; \
         the fragment pipeline keeps `steps/(√n+D)` flat across depths."
    );
}
