//! CI smoke benchmark: the round/wall-time trajectory of the exact
//! pipeline on two instance families at two sizes each, emitted as
//! `BENCH_rounds.json` so the perf history of the repository stops being
//! empty. Runs in seconds — this is a trend probe, not a full E1–E10
//! evaluation (`run_all` remains that).

use graphs::generators;
use mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut::seq::tree_packing::{PackingConfig, PackingSize};
use std::fmt::Write as _;
use std::time::Instant;

struct Sample {
    instance: String,
    n: usize,
    rounds: u64,
    messages: u64,
    cut: u64,
    wall_ms: f64,
}

fn run(instance: &str, g: &graphs::WeightedGraph) -> Sample {
    // Three packed trees: deterministic, fast, and enough to land the
    // planted cut on both smoke families (clique pairs need ≥ 2).
    let cfg = ExactConfig {
        packing: PackingConfig {
            size: PackingSize::Fixed(3),
            max_trees: 3,
        },
        ..Default::default()
    };
    let t = Instant::now();
    let r = exact_mincut(g, &cfg).expect("smoke instance must run");
    Sample {
        instance: instance.to_string(),
        n: g.node_count(),
        rounds: r.rounds,
        messages: r.messages,
        cut: r.cut.value,
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
    }
}

fn main() {
    let mut samples = Vec::new();
    for side in [12usize, 24] {
        let g = generators::torus2d(side, side).unwrap();
        samples.push(run(&format!("torus{side}x{side}"), &g));
    }
    for h in [16usize, 32] {
        let g = generators::clique_pair(h, 3).unwrap().graph;
        samples.push(run(&format!("clique_pair{h}"), &g));
    }

    // Hand-rolled JSON (the workspace's serde is an offline stub).
    let mut json = String::from("{\n  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let sep = if i + 1 == samples.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"instance\": \"{}\", \"n\": {}, \"rounds\": {}, \"messages\": {}, \"cut\": {}, \"wall_ms\": {:.3}}}{sep}",
            s.instance, s.n, s.rounds, s.messages, s.cut, s.wall_ms
        )
        .expect("write to string");
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_rounds.json", &json).expect("write BENCH_rounds.json");
    println!("{json}");
    println!("wrote BENCH_rounds.json ({} samples)", samples.len());
}
