//! CI smoke benchmark: the round/wall-time trajectory of the exact
//! pipeline on two instance families at two sizes each — crossed with
//! the round executor (serial, parallel, and the fault-injecting
//! `congest::sim` executor under a fixed lossy plan) — emitted as
//! `BENCH_rounds.json` so the perf history of the repository stops being
//! empty. Rounds, messages, and cut values are executor-independent by
//! construction (the parity suites assert it, faults included); the
//! per-executor rows track *wall time* and — for the faulty rows — the
//! α-synchronizer's round-overhead factor (`phys_rounds / rounds`),
//! which `message_gate` budgets on torus24x24.
//!
//! Besides the per-run totals, every (instance, executor) pair emits
//! **per-phase rows** (`phase_rows`): the ledger grouped by phase-label
//! stem (`leader_bfs`, `mstA`, `s4a`, …) with rounds/messages/bits and
//! the stem's accumulated engine wall time (`wall_ms`) each, and both
//! the top-3 message-heavy and the top-3 round-heavy stems are printed
//! per instance — so the trajectory shows *where* the traffic and the
//! time go, not just how much there is. That is the accounting that
//! proved (and now guards, see `message_gate`) the staged-election and
//! phase-A wins.
//!
//! Runs in seconds — this is a trend probe, not a full E1–E10 evaluation
//! (`run_all` remains that). Pass `--large` to append the 70602-node
//! `large_n` instance (the 3D torus + chords of `tests/large_n.rs`) in
//! both executor flavors; the release-mode CI job does, which is what
//! regression-guards the slot-arena/parallel speedup.

use congest::obs::{CostCenter, Profile};
use congest::{ExecutorKind, MetricsLedger, ObsHandle};
use graphs::generators;
use mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut::dist::{recover_mincut, RecoverConfig, Stage};
use mincut::seq::tree_packing::{PackingConfig, PackingSize};
use std::fmt::Write as _;
use std::time::Instant;

struct Sample {
    instance: String,
    executor: &'static str,
    threads: usize,
    n: usize,
    rounds: u64,
    /// Physical transport rounds (= `rounds` for fault-free executors;
    /// the α-synchronizer's ticks under the faulty one).
    phys_rounds: u64,
    messages: u64,
    cut: u64,
    wall_ms: f64,
    /// Original ids of the nodes the crash schedule killed (chaos rows;
    /// empty for every crash-free row).
    crashed: Vec<usize>,
    /// Rounds spent on failed attempts + censuses (`recover.*` phases).
    recovery_rounds: u64,
    /// Messages spent on failed attempts + censuses.
    recovery_messages: u64,
    /// Per-epoch recovery rounds (`recover.e{k}.` + `census.e{k}.`
    /// sums); empty for crash-free rows.
    wasted_rounds: Vec<u64>,
    /// Per-epoch recovery messages, same split.
    wasted_messages: Vec<u64>,
    /// Deepest checkpoint the healed attempt resumed from (`None` on
    /// crash-free rows and from-scratch recoveries).
    resumed_from: Option<Stage>,
    /// The obs cost-center/worker profile of the row (rows that attach
    /// a sink: the faulty and chaos rows carry the transport cost
    /// centers, the parallel rows the per-worker chunk utilization;
    /// `None` on the undecorated serial baseline).
    profile: Option<Profile>,
    ledger: MetricsLedger,
}

/// The executor grid every instance is measured under. The faulty rows
/// (driven by the shared deterministic [`mincut_bench::SMOKE_FAULTS`]
/// plan) track the synchronizer's overhead factor; their
/// cut/rounds/messages are bit-identical to serial by construction
/// (`tests/sim_parity.rs`).
const EXECUTORS: [(&str, ExecutorKind); 3] = [
    ("serial", ExecutorKind::Serial),
    ("parallel", ExecutorKind::Parallel { threads: 4 }),
    ("faulty", ExecutorKind::Faulty(mincut_bench::SMOKE_FAULTS)),
];

/// The large instance runs fault-free only: the transport simulation is
/// `O(ticks · edges-in-flight)` and the 70602-node instance is the wall
/// the *engine* rows regression-guard.
const LARGE_EXECUTORS: [(&str, ExecutorKind); 2] = [
    ("serial", ExecutorKind::Serial),
    ("parallel", ExecutorKind::Parallel { threads: 4 }),
];

fn run(
    instance: &str,
    g: &graphs::WeightedGraph,
    trees: usize,
    executor: (&'static str, ExecutorKind),
) -> Sample {
    // Fixed tree counts keep runs deterministic and fast; three trees is
    // enough to land the planted cut on both smoke families.
    let mut cfg = ExactConfig {
        packing: PackingConfig {
            size: PackingSize::Fixed(trees),
            max_trees: trees,
        },
        ..Default::default()
    }
    .with_executor(executor.1.clone());
    // The serial rows stay undecorated — they are the wall-time
    // baseline the other rows are compared against.
    let obs = (!matches!(executor.1, ExecutorKind::Serial)).then(ObsHandle::new);
    if let Some(handle) = &obs {
        cfg = cfg.with_obs(handle.clone());
    }
    let t = Instant::now();
    let r = exact_mincut(g, &cfg).expect("smoke instance must run");
    Sample {
        instance: instance.to_string(),
        executor: executor.0,
        threads: executor.1.effective_threads(),
        n: g.node_count(),
        rounds: r.rounds,
        phys_rounds: r.ledger.total_phys_rounds(),
        messages: r.messages,
        cut: r.cut.value,
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
        crashed: Vec::new(),
        recovery_rounds: 0,
        recovery_messages: 0,
        wasted_rounds: Vec::new(),
        wasted_messages: Vec::new(),
        resumed_from: None,
        profile: obs.map(|h| h.sink().profile()),
        ledger: r.ledger,
    }
}

/// The chaos row: the self-healing driver under [`mincut_bench::chaos_plan`]
/// (the `SMOKE_FAULTS` link adversary plus the `SMOKE_CRASHES` leader
/// kill). Its `crashed` / `recovery_*` columns are what the crash-plan
/// satellite tracks; `chaos_gate` budgets the same numbers on
/// torus24x24.
fn run_chaos(instance: &str, g: &graphs::WeightedGraph, trees: usize) -> Sample {
    let obs = ObsHandle::new();
    let cfg = RecoverConfig {
        base: ExactConfig {
            packing: PackingConfig {
                size: PackingSize::Fixed(trees),
                max_trees: trees,
            },
            ..Default::default()
        },
        ..Default::default()
    }
    .with_plan(mincut_bench::chaos_plan())
    .with_obs(obs.clone());
    let t = Instant::now();
    let r = recover_mincut(g, &cfg).expect("chaos instance must recover");
    Sample {
        instance: instance.to_string(),
        executor: "chaos",
        threads: 1,
        n: g.node_count(),
        rounds: r.rounds,
        phys_rounds: r.ledger.total_phys_rounds(),
        messages: r.messages,
        cut: r.cut.value,
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
        crashed: r.dead.iter().map(|v| v.index()).collect(),
        recovery_rounds: r.recovery_rounds,
        recovery_messages: r.recovery_messages,
        wasted_rounds: r.wasted_rounds,
        wasted_messages: r.wasted_messages,
        resumed_from: r.resumed_from,
        profile: Some(obs.sink().profile()),
        ledger: r.ledger,
    }
}

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    let mut samples = Vec::new();
    for executor in &EXECUTORS {
        for side in [12usize, 24] {
            let g = generators::torus2d(side, side).unwrap();
            samples.push(run(&format!("torus{side}x{side}"), &g, 3, executor.clone()));
        }
        for h in [16usize, 32] {
            let g = generators::clique_pair(h, 3).unwrap().graph;
            samples.push(run(&format!("clique_pair{h}"), &g, 3, executor.clone()));
        }
    }
    // The chaos rows: same adversary as the faulty rows *plus* the
    // shared leader-kill schedule, healed by the recovery driver. Torus
    // family only — that is the canonical chaos instance `chaos_gate`
    // budgets, and one family keeps the trend probe in seconds.
    for side in [12usize, 24] {
        let g = generators::torus2d(side, side).unwrap();
        samples.push(run_chaos(&format!("torus{side}x{side}"), &g, 3));
    }
    if large {
        let g = mincut_bench::large_n_graph();
        for executor in LARGE_EXECUTORS {
            samples.push(run("large_n_torus3d", &g, 1, executor));
        }
    }

    // Hand-rolled JSON (the workspace's serde is an offline stub). The
    // `overhead` column is the synchronizer's round-overhead factor
    // (`phys_rounds / rounds`; 1.0 for the fault-free executors) — the
    // tracked curve for "what does asynchrony cost the paper's bound".
    // The crash-plan columns (`crashed`, `recovery_rounds`,
    // `recovery_msg_share`) are zero everywhere except the chaos rows,
    // where they track what healing the leader kill costs. The
    // checkpoint columns split that bill per epoch (`wasted_rounds` /
    // `wasted_messages`, the `recover.e{k}.` + `census.e{k}.` sums) and
    // name the deepest restored stage (`resumed_from`: `"Bfs"`,
    // `"Packed(k)"`, or `null` for from-scratch / crash-free) — the
    // measurable savings of checkpointed resume over PR 6-style
    // restart-from-zero recovery.
    let mut json = String::from("{\n  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let sep = if i + 1 == samples.len() { "" } else { "," };
        let crashed: Vec<String> = s.crashed.iter().map(|v| v.to_string()).collect();
        let per_epoch = |v: &[u64]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let resumed = match s.resumed_from {
            None => "null".to_string(),
            Some(Stage::Bfs) => "\"Bfs\"".to_string(),
            Some(Stage::Packed(k)) => format!("\"Packed({k})\""),
        };
        // The transport cost centers (faulty/chaos rows: the profiler's
        // attribution of the tick loop's wall time) and the per-worker
        // chunk utilization (parallel rows) — `null` where the row's
        // executor records neither.
        let cost_centers = match &s.profile {
            Some(p) if p.total_ns > 0 => {
                let cells: Vec<String> = CostCenter::ALL
                    .iter()
                    .map(|&c| format!("\"{}\": {:.3}", c.label(), p.center_ns(c) as f64 / 1e6))
                    .collect();
                format!(
                    "{{{}, \"total_ms\": {:.3}, \"coverage\": {:.3}}}",
                    cells.join(", "),
                    p.total_ns as f64 / 1e6,
                    p.coverage()
                )
            }
            _ => "null".to_string(),
        };
        let workers = match &s.profile {
            Some(p) if !p.workers.is_empty() => {
                let cells: Vec<String> = p
                    .workers
                    .iter()
                    .map(|w| {
                        format!(
                            "{{\"sweeps\": {}, \"chunks\": {}, \"nodes\": {}, \"busy_ms\": {:.3}}}",
                            w.sweeps,
                            w.chunks,
                            w.nodes,
                            w.busy_ns as f64 / 1e6
                        )
                    })
                    .collect();
                format!("[{}]", cells.join(", "))
            }
            _ => "null".to_string(),
        };
        writeln!(
            json,
            "    {{\"instance\": \"{}\", \"executor\": \"{}\", \"threads\": {}, \"n\": {}, \"rounds\": {}, \"phys_rounds\": {}, \"overhead\": {:.3}, \"messages\": {}, \"cut\": {}, \"crashed\": [{}], \"recovery_rounds\": {}, \"recovery_msg_share\": {:.3}, \"wasted_rounds\": [{}], \"wasted_messages\": [{}], \"resumed_from\": {}, \"cost_centers\": {}, \"workers\": {}, \"wall_ms\": {:.3}}}{sep}",
            s.instance,
            s.executor,
            s.threads,
            s.n,
            s.rounds,
            s.phys_rounds,
            s.phys_rounds as f64 / s.rounds.max(1) as f64,
            s.messages,
            s.cut,
            crashed.join(", "),
            s.recovery_rounds,
            s.recovery_messages as f64 / s.messages.max(1) as f64,
            per_epoch(&s.wasted_rounds),
            per_epoch(&s.wasted_messages),
            resumed,
            cost_centers,
            workers,
            s.wall_ms
        )
        .expect("write to string");
    }
    json.push_str("  ],\n  \"phase_rows\": [\n");
    let phase_rows: Vec<String> = samples
        .iter()
        .flat_map(|s| {
            s.ledger.grouped_by_stem().into_iter().map(|(stem, g)| {
                format!(
                    "    {{\"instance\": \"{}\", \"executor\": \"{}\", \"phase\": \"{stem}\", \"phases\": {}, \"rounds\": {}, \"messages\": {}, \"bits\": {}, \"phys_rounds\": {}, \"dropped\": {}, \"retransmitted\": {}, \"wall_ms\": {:.3}}}",
                    s.instance, s.executor, g.phases, g.rounds, g.messages, g.bits,
                    g.sim.phys_rounds, g.sim.dropped, g.sim.retransmitted,
                    s.ledger.wall_ms_of_stem(&stem)
                )
            })
        })
        .collect();
    json.push_str(&phase_rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_rounds.json", &json).expect("write BENCH_rounds.json");
    println!("{json}");

    // Where does the traffic go: top-3 message-heavy phase stems per
    // instance (the serial rows; the parallel ones are bit-identical).
    for s in samples.iter().filter(|s| s.executor == "serial") {
        let mut groups = s.ledger.grouped_by_stem();
        groups.sort_by_key(|(_, g)| std::cmp::Reverse(g.messages));
        let top: Vec<String> = groups
            .iter()
            .take(3)
            .map(|(stem, g)| {
                format!(
                    "{stem} {:.1}% ({} msgs)",
                    100.0 * g.messages as f64 / s.messages.max(1) as f64,
                    g.messages
                )
            })
            .collect();
        println!("top phases {}: {}", s.instance, top.join(", "));
    }
    // Where does the *time* go in CONGEST terms: top-3 round-heavy phase
    // stems per instance. Message-heavy and round-heavy are different
    // phases (a flood is message-heavy in one round; a deep convergecast
    // is the opposite), so both rankings are printed.
    for s in samples.iter().filter(|s| s.executor == "serial") {
        let mut groups = s.ledger.grouped_by_stem();
        groups.sort_by_key(|(_, g)| std::cmp::Reverse(g.rounds));
        let top: Vec<String> = groups
            .iter()
            .take(3)
            .map(|(stem, g)| {
                format!(
                    "{stem} {:.1}% ({} rounds)",
                    100.0 * g.rounds as f64 / s.rounds.max(1) as f64,
                    g.rounds
                )
            })
            .collect();
        println!("top rounds {}: {}", s.instance, top.join(", "));
    }
    // What asynchrony costs: overhead factor + fault tallies per
    // faulty-executor instance.
    for s in samples.iter().filter(|s| s.executor == "faulty") {
        println!(
            "sync overhead {}: {:.2}x ({} -> {} rounds, {} dropped, {} retransmitted, {} duplicated)",
            s.instance,
            s.ledger.sim_overhead_factor(),
            s.rounds,
            s.phys_rounds,
            s.ledger.total_dropped(),
            s.ledger.total_retransmitted(),
            s.ledger.total_duplicated(),
        );
    }
    // Where the *transport's* time goes: the profiler's top cost
    // centers per faulty/chaos row, with the attributed share.
    for s in &samples {
        let Some(p) = s.profile.as_ref().filter(|p| p.total_ns > 0) else {
            continue;
        };
        let mut centers: Vec<(CostCenter, u64)> = CostCenter::ALL
            .iter()
            .map(|&c| (c, p.center_ns(c)))
            .collect();
        centers.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));
        let top: Vec<String> = centers
            .iter()
            .take(3)
            .map(|(c, ns)| {
                format!(
                    "{} {:.1}%",
                    c.label(),
                    100.0 * *ns as f64 / p.total_ns as f64
                )
            })
            .collect();
        println!(
            "cost centers {} ({}): {} — {:.1}% attributed",
            s.instance,
            s.executor,
            top.join(", "),
            100.0 * p.coverage()
        );
    }
    // How evenly the parallel sweep's chunk claiming spread the work.
    for s in &samples {
        let Some(p) = s.profile.as_ref().filter(|p| !p.workers.is_empty()) else {
            continue;
        };
        let total_nodes: u64 = p.workers.iter().map(|w| w.nodes).sum();
        let shares: Vec<String> = p
            .workers
            .iter()
            .map(|w| format!("{:.1}%", 100.0 * w.nodes as f64 / total_nodes.max(1) as f64))
            .collect();
        println!(
            "worker utilization {} ({}): nodes {}",
            s.instance,
            s.executor,
            shares.join("/")
        );
    }
    // What healing costs: the chaos rows' crash + recovery accounting.
    for s in samples.iter().filter(|s| s.executor == "chaos") {
        println!(
            "chaos {}: crashed {:?}, cut {}, recovery {} rounds / {:.1}% of {} msgs, per-epoch {:?}, resumed_from {:?}",
            s.instance,
            s.crashed,
            s.cut,
            s.recovery_rounds,
            100.0 * s.recovery_messages as f64 / s.messages.max(1) as f64,
            s.messages,
            s.wasted_rounds,
            s.resumed_from,
        );
    }
    println!("wrote BENCH_rounds.json ({} samples)", samples.len());
}
