//! E8 — Ablation: the fragment size cap. The paper's `√n` balances
//! intra-fragment work (∝ cap) against fragment count (∝ n/cap); both
//! extremes lose.

use graphs::generators;
use mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut::dist::mst::MstConfig;
use mincut::seq::tree_packing::{PackingConfig, PackingSize};
use mincut_bench::{banner, f, table};

fn main() {
    banner("E8", "fragment size cap ablation: √n is the sweet spot");
    let g = generators::torus2d(12, 12).unwrap(); // n = 144
    let n = g.node_count() as f64;
    let caps: Vec<(String, usize)> = vec![
        ("n^0.25".into(), n.powf(0.25).ceil() as usize),
        ("n^0.5 (paper)".into(), n.sqrt().ceil() as usize),
        ("n^0.75".into(), n.powf(0.75).ceil() as usize),
        ("n (one fragment)".into(), n as usize),
    ];
    let mut rows = Vec::new();
    for (name, cap) in caps {
        let cfg = ExactConfig {
            mst: MstConfig {
                cap: Some(cap),
                ..Default::default()
            },
            packing: PackingConfig {
                size: PackingSize::Fixed(2),
                max_trees: 2,
            },
            ..Default::default()
        };
        let r = exact_mincut(&g, &cfg).unwrap();
        rows.push(vec![
            name,
            cap.to_string(),
            r.rounds.to_string(),
            f(r.rounds as f64 / (n.sqrt() + 12.0), 1),
            r.cut.value.to_string(),
        ]);
    }
    table(
        &[
            "cap policy",
            "cap",
            "rounds (2 trees)",
            "rounds/(√n+D)",
            "value",
        ],
        &rows,
    );
    println!("shape check: rounds are minimized near cap = √n; value is identical everywhere.");
}
