//! E3 — The `poly(λ)` factor: with the heuristic packing the tree count
//! (and hence total rounds) grows with λ while per-tree cost stays flat.

use graphs::generators;
use mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut_bench::{banner, f, scaling_unit, table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E3",
        "total rounds ∝ trees packed ∝ λ·log n; per-tree cost flat",
    );
    let mut rng = StdRng::seed_from_u64(3);
    let mut rows = Vec::new();
    for lambda in [1usize, 2, 3, 4, 6, 8] {
        let p = generators::community_pair(24, 10, lambda, &mut rng).unwrap();
        let g = p.graph;
        let unit = scaling_unit(&g);
        let r = exact_mincut(&g, &ExactConfig::default()).unwrap();
        rows.push(vec![
            lambda.to_string(),
            g.node_count().to_string(),
            r.cut.value.to_string(),
            r.trees_packed.to_string(),
            r.rounds.to_string(),
            f(r.rounds as f64 / r.trees_packed.max(1) as f64 / unit, 1),
        ]);
    }
    table(
        &[
            "λ (planted)",
            "n",
            "λ (found)",
            "trees",
            "rounds",
            "per-tree/(√n+D)",
        ],
        &rows,
    );
    println!("shape check: `trees` and `rounds` grow ≈ linearly in λ; the last column is flat.");
}
