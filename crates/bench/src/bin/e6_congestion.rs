//! E6 — CONGEST compliance: in strict mode no message ever exceeds
//! `B = 8·⌈log₂ n⌉` bits; the table reports the worst observed message and
//! the communication volume.

use graphs::generators;
use mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut_bench::{banner, table};

fn main() {
    banner(
        "E6",
        "bandwidth compliance and message volumes (strict mode)",
    );
    let cfg = ExactConfig::default();
    let budget_of = |n: usize| cfg.network.bandwidth_bits(n);
    let mut rows = Vec::new();
    let cases: Vec<(String, graphs::WeightedGraph)> = vec![
        ("cycle(64)".into(), generators::cycle(64).unwrap()),
        ("torus(8x8)".into(), generators::torus2d(8, 8).unwrap()),
        ("grid(8x8)".into(), generators::grid2d(8, 8).unwrap()),
        (
            "clique_pair(12,4)".into(),
            generators::clique_pair(12, 4).unwrap().graph,
        ),
        (
            "das_sarma(4,16)".into(),
            generators::das_sarma_style(4, 16).unwrap(),
        ),
    ];
    for (name, g) in &cases {
        let r = exact_mincut(g, &cfg).unwrap();
        let n = g.node_count();
        rows.push(vec![
            name.clone(),
            n.to_string(),
            budget_of(n).to_string(),
            r.ledger.max_message_bits().to_string(),
            r.ledger.total_violations().to_string(),
            r.messages.to_string(),
            r.ledger.total_bits().to_string(),
        ]);
    }
    table(
        &[
            "instance",
            "n",
            "budget B (bits)",
            "max message (bits)",
            "violations",
            "messages",
            "total bits",
        ],
        &rows,
    );
    println!(
        "strict mode would have *errored* on any violation; the zeros are enforced, not sampled."
    );
}
