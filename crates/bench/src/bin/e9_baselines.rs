//! E9 — The Su-inspired sampling baseline cannot be exact (as the paper
//! notes about Su's approach), while the exact algorithm is; the GK-style
//! baseline is cheap but ≈2×.

use graphs::generators;
use mincut::dist::baselines::{gk_baseline, su_baseline, BaselineConfig};
use mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut::seq::stoer_wagner;
use mincut_bench::{banner, f, table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E9",
        "exact algorithm vs sampling baselines across planted instances",
    );
    let mut rng = StdRng::seed_from_u64(9);
    let mut rows = Vec::new();
    for (tag, lambda) in [("a", 2usize), ("b", 3), ("c", 5)] {
        let p = generators::community_pair(20, 8, lambda, &mut rng).unwrap();
        let g = p.graph;
        let opt = stoer_wagner(&g).unwrap().value;
        let ex = exact_mincut(&g, &ExactConfig::default()).unwrap();
        let su = su_baseline(&g, &BaselineConfig::default()).unwrap();
        let gk = gk_baseline(&g, &BaselineConfig::default()).unwrap();
        for (alg, value, rounds) in [
            ("exact (this paper)", ex.cut.value, ex.rounds),
            ("Su-inspired", su.cut.value, su.rounds),
            ("GK-inspired", gk.cut.value, gk.rounds),
        ] {
            rows.push(vec![
                format!("{tag} (λ={lambda})"),
                alg.to_string(),
                opt.to_string(),
                value.to_string(),
                f(value as f64 / opt as f64, 2),
                rounds.to_string(),
            ]);
        }
    }
    table(
        &["instance", "algorithm", "λ", "value", "ratio", "rounds"],
        &rows,
    );
    println!(
        "shape check: the exact rows are always ratio 1.00; the samplers trade quality for rounds."
    );
}
