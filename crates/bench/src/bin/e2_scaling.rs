//! E2 — Round complexity of one MST + 1-respecting stage scales as
//! `Õ(√n + D)` (Theorem 2.1 plus the Kutten–Peleg-style MST): the
//! normalized cost `rounds/(√n+D)` stays near-flat (polylog drift) while
//! `n` grows 16-fold.

use graphs::generators;
use mincut_bench::{banner, f, scaling_unit, single_tree_run, table};

fn main() {
    banner(
        "E2",
        "rounds of one tree iteration track √n + D (fig.-style series)",
    );

    println!("### Torus family (D = Θ(√n))");
    println!();
    let mut rows = Vec::new();
    for side in [6usize, 9, 12, 18, 24] {
        let g = generators::torus2d(side, side).unwrap();
        let unit = scaling_unit(&g);
        let r = single_tree_run(&g);
        rows.push(vec![
            format!("torus({side}x{side})"),
            g.node_count().to_string(),
            f(unit, 1),
            r.rounds.to_string(),
            f(r.rounds as f64 / unit, 1),
        ]);
    }
    table(
        &["instance", "n", "√n + D", "rounds", "rounds/(√n+D)"],
        &rows,
    );

    println!("### Das-Sarma family (D = O(log n), √n dominates)");
    println!();
    let mut rows = Vec::new();
    for (gamma, ell) in [(3usize, 8usize), (4, 16), (6, 32), (8, 64)] {
        let g = generators::das_sarma_style(gamma, ell).unwrap();
        let unit = scaling_unit(&g);
        let r = single_tree_run(&g);
        rows.push(vec![
            format!("das_sarma({gamma},{ell})"),
            g.node_count().to_string(),
            f(unit, 1),
            r.rounds.to_string(),
            f(r.rounds as f64 / unit, 1),
        ]);
    }
    table(
        &["instance", "n", "√n + D", "rounds", "rounds/(√n+D)"],
        &rows,
    );

    println!("### Path family (D = Θ(n): the D term dominates)");
    println!();
    let mut rows = Vec::new();
    for n in [64usize, 128, 256] {
        let g = generators::path(n).unwrap();
        let unit = scaling_unit(&g);
        let r = single_tree_run(&g);
        rows.push(vec![
            format!("path({n})"),
            n.to_string(),
            f(unit, 1),
            r.rounds.to_string(),
            f(r.rounds as f64 / unit, 1),
        ]);
    }
    table(
        &["instance", "n", "√n + D", "rounds", "rounds/(√n+D)"],
        &rows,
    );
    println!("shape check: the last column drifts polylogarithmically, not polynomially.");
}
