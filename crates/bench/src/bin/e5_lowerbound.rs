//! E5 — Tightness against the `Ω̃(√n + D)` lower bound of Das Sarma et
//! al.: on the lower-bound instance family the measured rounds stay within
//! a polylog factor of `√n + D`.

use graphs::generators;
use mincut_bench::{banner, f, scaling_unit, single_tree_run, table};

fn main() {
    banner(
        "E5",
        "gap to the Ω̃(√n + D) lower bound on the Das-Sarma family (one tree iteration)",
    );
    let mut rows = Vec::new();
    for (gamma, ell) in [
        (2usize, 8usize),
        (4, 8),
        (4, 16),
        (8, 16),
        (8, 32),
        (12, 64),
    ] {
        let g = generators::das_sarma_style(gamma, ell).unwrap();
        let n = g.node_count();
        let unit = scaling_unit(&g);
        let r = single_tree_run(&g);
        let gap = r.rounds as f64 / unit;
        let polylog = (n as f64).log2().powi(2);
        rows.push(vec![
            format!("das_sarma({gamma},{ell})"),
            n.to_string(),
            f(unit, 1),
            r.rounds.to_string(),
            f(gap, 1),
            f(gap / polylog, 2),
        ]);
    }
    table(
        &[
            "instance",
            "n",
            "√n + D (LB unit)",
            "rounds",
            "gap factor",
            "gap / log²n",
        ],
        &rows,
    );
    println!("shape check: `gap / log²n` is bounded by a constant — almost-tight, as claimed.");
}
