//! CI trace gate + artifact: runs the self-healing chaos instance
//! (torus24x24 under [`mincut_bench::chaos_plan`] — the lossy link
//! adversary plus the leader kill) **twice**, first undecorated and
//! then with a `congest::obs` sink attached, and enforces the
//! observability layer's two hard contracts on the real pipeline:
//!
//! 1. **Zero observer effect** — the decorated run's outputs and full
//!    [`congest::MetricsLedger`] (payload and transport counters
//!    alike) are bit-identical to the undecorated run's;
//! 2. **Profiler coverage** — the cost-center profile attributes at
//!    least 90% of the faulty executor's wall time to named centers.
//!
//! It then exports the decorated run's Chrome trace, re-parses it with
//! the strict in-tree JSON parser (a malformed exporter fails here,
//! not in the Perfetto UI), checks every slice is a balanced `B`/`E`
//! pair, and writes it to `TRACE_chaos_torus24x24.json` (override with
//! `--out <path>`) — the artifact the large-n CI job uploads. Load it
//! at <https://ui.perfetto.dev> for one track per phase stem plus the
//! transport and recovery tracks.

use congest::obs::{export_chrome_trace, json, CostCenter};
use congest::{MetricsLedger, ObsHandle};
use graphs::generators;
use mincut::dist::{recover_mincut, ExactConfig, RecoverConfig, RecoveredMinCut};
use mincut::seq::tree_packing::{PackingConfig, PackingSize};

fn run(obs: Option<&ObsHandle>) -> (RecoveredMinCut, MetricsLedger) {
    let g = generators::torus2d(24, 24).expect("valid torus");
    let mut cfg = RecoverConfig {
        base: ExactConfig {
            packing: PackingConfig {
                size: PackingSize::Fixed(3),
                max_trees: 3,
            },
            ..Default::default()
        },
        ..Default::default()
    }
    .with_plan(mincut_bench::chaos_plan());
    if let Some(handle) = obs {
        cfg = cfg.with_obs(handle.clone());
    }
    let r = recover_mincut(&g, &cfg).expect("chaos instance must recover");
    let ledger = r.ledger.clone();
    (r, ledger)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out = String::from("TRACE_chaos_torus24x24.json");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().expect("--out takes a path"),
            other => {
                eprintln!("unknown argument {other:?} (usage: trace_export [--out PATH])");
                std::process::exit(2);
            }
        }
    }

    // The undecorated baseline, then the observed run. The two wall
    // clocks quantify the cost of tracing on the real pipeline (the
    // docs quote them; the hard contracts below don't depend on them).
    let t = std::time::Instant::now();
    let (plain, plain_ledger) = run(None);
    let plain_ms = t.elapsed().as_secs_f64() * 1e3;
    let obs = ObsHandle::new();
    let t = std::time::Instant::now();
    let (observed, observed_ledger) = run(Some(&obs));
    let observed_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "wall clock: {plain_ms:.0} ms undecorated, {observed_ms:.0} ms observed ({:+.1}%)",
        100.0 * (observed_ms - plain_ms) / plain_ms
    );

    // Contract 1: zero observer effect, bit for bit.
    assert_eq!(
        plain.cut.value, observed.cut.value,
        "attaching a sink must not change the cut"
    );
    assert_eq!(
        plain.cut.side, observed.cut.side,
        "attaching a sink must not change the side"
    );
    assert_eq!(
        plain_ledger.phases(),
        observed_ledger.phases(),
        "attaching a sink must leave the ledger bit-identical"
    );
    println!(
        "observer effect: none ({} phases bit-identical, cut {})",
        plain_ledger.phases().len(),
        plain.cut.value
    );

    // Contract 2: the profiler attributes >= 90% of the faulty
    // executor's wall time to named cost centers.
    let profile = obs.sink().profile();
    assert!(profile.total_ns > 0, "the faulty executor was profiled");
    assert!(
        profile.coverage() >= 0.9,
        "cost centers attribute {:.1}% of wall time, need >= 90%",
        100.0 * profile.coverage()
    );
    let mut centers: Vec<(CostCenter, u64)> = CostCenter::ALL
        .iter()
        .map(|&c| (c, profile.center_ns(c)))
        .collect();
    centers.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));
    println!(
        "profiler: {:.1}% of {:.1} ms attributed — {}",
        100.0 * profile.coverage(),
        profile.total_ns as f64 / 1e6,
        centers
            .iter()
            .filter(|&&(_, ns)| ns > 0)
            .map(|(c, ns)| format!(
                "{} {:.1}%",
                c.label(),
                100.0 * *ns as f64 / profile.total_ns as f64
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // The artifact: export, strictly re-parse, check slice balance.
    let trace = export_chrome_trace(obs.sink());
    let root = json::parse(&trace).expect("exporter output must be strict JSON");
    let events = root
        .get("traceEvents")
        .and_then(json::Value::as_arr)
        .expect("traceEvents array");
    let mut depth: std::collections::BTreeMap<u64, i64> = std::collections::BTreeMap::new();
    let (mut slices, mut instants) = (0u64, 0u64);
    for e in events {
        let ph = e.get("ph").and_then(json::Value::as_str).expect("ph");
        let tid = e.get("tid").and_then(json::Value::as_f64).unwrap_or(0.0) as u64;
        match ph {
            "B" => *depth.entry(tid).or_default() += 1,
            "E" => {
                let d = depth.entry(tid).or_default();
                *d -= 1;
                assert!(*d >= 0, "E without a matching B on tid {tid}");
                slices += 1;
            }
            "i" => instants += 1,
            "M" => {}
            other => panic!("unexpected phase type {other:?}"),
        }
    }
    assert!(
        depth.values().all(|&d| d == 0),
        "unbalanced B/E pairs: {depth:?}"
    );
    let report = obs.sink().snapshot();
    std::fs::write(&out, &trace).expect("write trace artifact");
    println!(
        "wrote {out}: {} events ({slices} phase slices, {instants} instants, {} dropped from the ring)",
        events.len(),
        report.dropped
    );
}
