//! Rooted trees, Euler tours, lowest common ancestors, union-find, and
//! sequential minimum spanning trees.
//!
//! These are the sequential tree algorithms the reproduction relies on:
//!
//! * [`RootedTree`] — parent/children/depth arrays built from a parent map
//!   or a set of tree edges;
//! * [`euler`] — Euler tours of rooted trees;
//! * [`lca`] — two LCA structures (sparse-table RMQ and binary lifting),
//!   used both directly by sequential oracles and as test oracles for the
//!   distributed LCA of the paper's Step 5;
//! * [`subtree`] — entry/exit times, ancestor tests, subtree sums (the
//!   sequential counterpart of the paper's `δ↓`/`ρ↓` aggregation);
//! * [`dsu`] — union-find;
//! * [`mst`] — Kruskal / Prim / Borůvka with pluggable keys (the packing
//!   algorithm orders edges by `(load, weight, id)`);
//! * [`spanning`] — BFS/DFS/random spanning trees;
//! * [`decompose`] — sequential fragment decomposition of a tree into
//!   `O(n/s)` connected subtrees of diameter `O(s)` (the sequential mirror
//!   of Kutten–Peleg's partition, used as a test oracle).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decompose;
pub mod dsu;
pub mod euler;
pub mod lca;
pub mod mst;
mod rooted;
pub mod spanning;
pub mod subtree;

pub use dsu::DisjointSets;
pub use rooted::{RootedTree, TreeError};
