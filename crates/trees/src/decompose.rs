//! Sequential fragment decomposition of a rooted tree.
//!
//! Partitions a rooted tree into connected subtrees ("fragments") such that
//! with cap `s`:
//!
//! * every fragment is a connected subtree of the original tree,
//! * every fragment except possibly the root's has at least `s` nodes, so
//!   there are at most `n/s + 1` fragments,
//! * every node is within `< s` tree hops of its fragment root, so fragment
//!   diameter is `< 2s`.
//!
//! With `s = ⌈√n⌉` this is exactly the `(√n + 1, O(√n))` partition the
//! paper takes from Kutten–Peleg (§3.2), used here as the **sequential test
//! oracle**; the distributed pipeline obtains its fragments from phase A of
//! the distributed MST instead (as the paper's footnote 1 suggests).

use crate::RootedTree;
use graphs::NodeId;

/// A fragment decomposition of a rooted tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fragments {
    /// `label[v]` = fragment index of node `v`, in `0..count`.
    pub label: Vec<u32>,
    /// `root_of[f]` = the fragment root (the node of the fragment closest to
    /// the tree root).
    pub root_of: Vec<NodeId>,
    /// Number of fragments.
    pub count: usize,
}

impl Fragments {
    /// Fragment index of `v`.
    pub fn fragment_of(&self, v: NodeId) -> u32 {
        self.label[v.index()]
    }

    /// Nodes of each fragment, grouped.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.count];
        for (v, &f) in self.label.iter().enumerate() {
            out[f as usize].push(NodeId::from_index(v));
        }
        out
    }
}

/// Decomposes `tree` into fragments with size cap `s ≥ 1` (see module docs).
///
/// Fragment indices are assigned in increasing order of fragment-root BFS
/// discovery, so the root's fragment has index 0.
///
/// # Panics
///
/// Panics if `s == 0`.
pub fn decompose(tree: &RootedTree, s: usize) -> Fragments {
    assert!(s >= 1, "size cap must be at least 1");
    let n = tree.len();
    // Bottom-up: pending size of the not-yet-closed subtree hanging at v.
    let mut pending = vec![1u32; n];
    let mut closed = vec![false; n];
    for v in tree.bottom_up() {
        if pending[v.index()] as usize >= s || v == tree.root() {
            closed[v.index()] = true;
        } else if let Some(p) = tree.parent(v) {
            pending[p.index()] += pending[v.index()];
        }
    }
    // Top-down: fragment label = nearest closed ancestor (inclusive).
    let mut label = vec![u32::MAX; n];
    let mut root_of = Vec::new();
    for &v in tree.bfs_order() {
        if closed[v.index()] {
            label[v.index()] = root_of.len() as u32;
            root_of.push(v);
        } else {
            let p = tree.parent(v).expect("non-root nodes have parents");
            label[v.index()] = label[p.index()];
        }
    }
    Fragments {
        label,
        count: root_of.len(),
        root_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn node(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn random_tree(n: usize, seed: u64) -> RootedTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut parents: Vec<Option<NodeId>> = vec![None];
        for v in 1..n {
            parents.push(Some(node(rng.gen_range(0..v as u32))));
        }
        RootedTree::from_parents(node(0), &parents).unwrap()
    }

    fn check_invariants(tree: &RootedTree, s: usize, f: &Fragments) {
        let n = tree.len();
        // Every node labelled.
        assert!(f.label.iter().all(|&l| (l as usize) < f.count));
        // Fragment roots carry their own label and are the shallowest.
        for (i, &r) in f.root_of.iter().enumerate() {
            assert_eq!(f.label[r.index()], i as u32);
        }
        // Connectivity + depth bound: walking up from any node stays in the
        // fragment until the fragment root, within < s hops.
        for v in 0..n {
            let v = node(v as u32);
            let fr = f.root_of[f.fragment_of(v) as usize];
            let mut cur = v;
            let mut hops = 0;
            while cur != fr {
                assert_eq!(f.fragment_of(cur), f.fragment_of(v));
                cur = tree.parent(cur).expect("fragment root is an ancestor");
                hops += 1;
                assert!(hops < s, "node {v:?} is ≥ {s} hops from fragment root");
            }
        }
        // Count bound: every non-root fragment has ≥ s nodes.
        let members = f.members();
        for (i, m) in members.iter().enumerate() {
            assert!(!m.is_empty());
            if f.root_of[i] != tree.root() {
                assert!(m.len() >= s, "fragment {i} has {} < {s} nodes", m.len());
            }
        }
        assert!(f.count <= n / s + 1, "too many fragments: {}", f.count);
    }

    #[test]
    fn path_decomposition() {
        let n = 20;
        let parents: Vec<Option<NodeId>> = (0..n)
            .map(|v| if v == 0 { None } else { Some(node(v - 1)) })
            .collect();
        let t = RootedTree::from_parents(node(0), &parents).unwrap();
        let f = decompose(&t, 5);
        check_invariants(&t, 5, &f);
        assert_eq!(f.count, 4);
    }

    #[test]
    fn random_trees_meet_invariants() {
        for seed in 0..8 {
            let t = random_tree(200, seed);
            for s in [1usize, 3, 14, 15, 50, 200] {
                let f = decompose(&t, s);
                check_invariants(&t, s, &f);
            }
        }
    }

    #[test]
    fn cap_one_makes_singletons() {
        let t = random_tree(30, 9);
        let f = decompose(&t, 1);
        assert_eq!(f.count, 30);
    }

    #[test]
    fn cap_n_makes_one_fragment() {
        let t = random_tree(30, 10);
        let f = decompose(&t, 30);
        assert_eq!(f.count, 1);
        assert_eq!(f.root_of[0], t.root());
    }

    #[test]
    fn sqrt_cap_matches_paper_bounds() {
        let n = 400;
        let t = random_tree(n, 11);
        let s = 20; // √400
        let f = decompose(&t, s);
        check_invariants(&t, s, &f);
        assert!(f.count <= n / s + 1);
    }
}
