//! Subtree machinery: DFS entry/exit intervals, ancestor tests, and subtree
//! aggregation — the sequential mirror of the paper's `δ↓`/`ρ↓` sums.

use crate::RootedTree;
use graphs::NodeId;

/// DFS entry/exit times of a rooted tree: `v` is an ancestor of `u` iff
/// `tin[v] ≤ tin[u] < tout[v]`.
#[derive(Clone, Debug)]
pub struct SubtreeIntervals {
    /// Entry time of each node in a DFS from the root.
    pub tin: Vec<u32>,
    /// Exit time (exclusive) of each node.
    pub tout: Vec<u32>,
}

impl SubtreeIntervals {
    /// Computes entry/exit times (children in sorted order).
    pub fn new(tree: &RootedTree) -> Self {
        let n = tree.len();
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut clock = 0u32;
        let mut stack: Vec<(NodeId, usize)> = vec![(tree.root(), 0)];
        tin[tree.root().index()] = clock;
        clock += 1;
        while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
            let children = tree.children(v);
            if *ci < children.len() {
                let c = children[*ci];
                *ci += 1;
                tin[c.index()] = clock;
                clock += 1;
                stack.push((c, 0));
            } else {
                tout[v.index()] = clock;
                stack.pop();
            }
        }
        SubtreeIntervals { tin, tout }
    }

    /// Returns `true` iff `anc` is an ancestor of `v` (nodes are their own
    /// ancestors, matching the paper's `v ∈ v↓`).
    pub fn is_ancestor(&self, anc: NodeId, v: NodeId) -> bool {
        self.tin[anc.index()] <= self.tin[v.index()] && self.tin[v.index()] < self.tout[anc.index()]
    }

    /// Size of the subtree of `v`.
    pub fn subtree_size(&self, v: NodeId) -> usize {
        (self.tout[v.index()] - self.tin[v.index()]) as usize
    }
}

/// Sums `values` over every subtree: returns `out` with
/// `out[v] = Σ_{u ∈ v↓} values[u]`.
///
/// This is the sequential counterpart of the paper's convergecast of `δ` and
/// `ρ` (Lemma 2.2 needs `δ↓(v)` and `ρ↓(v)`).
///
/// # Panics
///
/// Panics if `values.len() != tree.len()`.
pub fn subtree_sums(tree: &RootedTree, values: &[u64]) -> Vec<u64> {
    assert_eq!(values.len(), tree.len(), "one value per node required");
    let mut out = values.to_vec();
    for v in tree.bottom_up() {
        if let Some(p) = tree.parent(v) {
            out[p.index()] += out[v.index()];
        }
    }
    out
}

/// Generic subtree aggregation over any commutative monoid: `out[v]` is the
/// fold of `values[u]` over `u ∈ v↓`.
///
/// # Panics
///
/// Panics if `values.len() != tree.len()`.
pub fn subtree_fold<T, F>(tree: &RootedTree, values: &[T], identity: T, mut combine: F) -> Vec<T>
where
    T: Clone,
    F: FnMut(&T, &T) -> T,
{
    assert_eq!(values.len(), tree.len(), "one value per node required");
    let _ = &identity;
    let mut out: Vec<T> = values.to_vec();
    for v in tree.bottom_up() {
        if let Some(p) = tree.parent(v) {
            out[p.index()] = combine(&out[p.index()], &out[v.index()]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn sample() -> RootedTree {
        // 0 — {1, 2}; 1 — {3, 4}; 2 — {5}
        RootedTree::from_edges(
            6,
            node(0),
            &[
                (node(0), node(1)),
                (node(0), node(2)),
                (node(1), node(3)),
                (node(1), node(4)),
                (node(2), node(5)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn intervals_nest_properly() {
        let t = sample();
        let iv = SubtreeIntervals::new(&t);
        assert!(iv.is_ancestor(node(0), node(5)));
        assert!(iv.is_ancestor(node(1), node(4)));
        assert!(!iv.is_ancestor(node(1), node(5)));
        assert!(iv.is_ancestor(node(3), node(3)));
        assert!(!iv.is_ancestor(node(3), node(1)));
        assert_eq!(iv.subtree_size(node(0)), 6);
        assert_eq!(iv.subtree_size(node(1)), 3);
        assert_eq!(iv.subtree_size(node(5)), 1);
    }

    #[test]
    fn sums_match_manual() {
        let t = sample();
        let vals = [1u64, 10, 100, 1000, 10000, 100000];
        let s = subtree_sums(&t, &vals);
        assert_eq!(s[3], 1000);
        assert_eq!(s[1], 10 + 1000 + 10000);
        assert_eq!(s[2], 100 + 100000);
        assert_eq!(s[0], vals.iter().sum::<u64>());
    }

    #[test]
    fn fold_with_max() {
        let t = sample();
        let vals = [3u64, 1, 4, 1, 5, 9];
        let m = subtree_fold(&t, &vals, 0, |a, b| *a.max(b));
        assert_eq!(m[1], 5);
        assert_eq!(m[2], 9);
        assert_eq!(m[0], 9);
    }

    #[test]
    fn interval_sizes_match_subtree_sizes() {
        let t = sample();
        let iv = SubtreeIntervals::new(&t);
        let sz = t.subtree_sizes();
        for (v, &size) in sz.iter().enumerate() {
            assert_eq!(iv.subtree_size(node(v as u32)), size as usize);
        }
    }

    #[test]
    #[should_panic(expected = "one value per node")]
    fn wrong_length_panics() {
        let t = sample();
        let _ = subtree_sums(&t, &[1, 2]);
    }
}
