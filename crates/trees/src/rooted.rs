//! Rooted tree representation: parents, children, depths, and orders.

use graphs::NodeId;
use std::error::Error;
use std::fmt;

/// Errors from rooted-tree construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The edge set does not form a spanning tree of `0..n` (wrong count,
    /// cycle, or disconnected).
    NotATree {
        /// Human-readable description.
        reason: String,
    },
    /// A node index was out of range.
    NodeOutOfRange {
        /// The offending index.
        node: u32,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::NotATree { reason } => write!(f, "not a tree: {reason}"),
            TreeError::NodeOutOfRange { node } => write!(f, "node {node} out of range"),
        }
    }
}

impl Error for TreeError {}

/// A rooted tree on nodes `0..n`.
///
/// Stores parents, children lists, depths, and a BFS order from the root.
/// Children lists are sorted by node index, so traversals are deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<u32>,
    bfs_order: Vec<NodeId>,
}

impl RootedTree {
    /// Builds a rooted tree from undirected tree edges `(u, v)`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError`] if the edges do not form a spanning tree on
    /// `0..n` or an index is out of range.
    pub fn from_edges(
        n: usize,
        root: NodeId,
        edges: &[(NodeId, NodeId)],
    ) -> Result<Self, TreeError> {
        if root.index() >= n {
            return Err(TreeError::NodeOutOfRange { node: root.raw() });
        }
        if edges.len() + 1 != n {
            return Err(TreeError::NotATree {
                reason: format!("{} edges for {} nodes", edges.len(), n),
            });
        }
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u.index() >= n {
                return Err(TreeError::NodeOutOfRange { node: u.raw() });
            }
            if v.index() >= n {
                return Err(TreeError::NodeOutOfRange { node: v.raw() });
            }
            adj[u.index()].push(v);
            adj[v.index()].push(u);
        }
        // BFS orientation from the root.
        let mut parent = vec![None; n];
        let mut depth = vec![0u32; n];
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();
        visited[root.index()] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &u in &adj[v.index()] {
                if !visited[u.index()] {
                    visited[u.index()] = true;
                    parent[u.index()] = Some(v);
                    depth[u.index()] = depth[v.index()] + 1;
                    queue.push_back(u);
                }
            }
        }
        if order.len() != n {
            return Err(TreeError::NotATree {
                reason: format!("only {} of {} nodes reachable from root", order.len(), n),
            });
        }
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (v, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[p.index()].push(NodeId::from_index(v));
            }
        }
        for c in &mut children {
            c.sort_unstable();
        }
        Ok(RootedTree {
            root,
            parent,
            children,
            depth,
            bfs_order: order,
        })
    }

    /// Builds a rooted tree from a parent array (`parent[root] = None`).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError`] if the parent pointers contain a cycle, point
    /// out of range, or do not reach the root from every node.
    pub fn from_parents(root: NodeId, parents: &[Option<NodeId>]) -> Result<Self, TreeError> {
        let n = parents.len();
        if root.index() >= n {
            return Err(TreeError::NodeOutOfRange { node: root.raw() });
        }
        if parents[root.index()].is_some() {
            return Err(TreeError::NotATree {
                reason: "root must have no parent".to_string(),
            });
        }
        let edges: Vec<(NodeId, NodeId)> = parents
            .iter()
            .enumerate()
            .filter_map(|(v, p)| p.map(|p| (NodeId::from_index(v), p)))
            .collect();
        if edges.len() + 1 != n {
            return Err(TreeError::NotATree {
                reason: "exactly one node may lack a parent".to_string(),
            });
        }
        Self::from_edges(n, root, &edges)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the tree has no nodes. (Constructible only via a
    /// zero-length parent array, which `from_parents` rejects; kept for API
    /// completeness.)
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `v`, or `None` for the root.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// Children of `v`, sorted by index.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// Depth of `v` (root has depth 0).
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.index()]
    }

    /// Height of the tree: maximum depth.
    pub fn height(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Nodes in BFS order from the root (root first).
    pub fn bfs_order(&self) -> &[NodeId] {
        &self.bfs_order
    }

    /// Nodes in reverse BFS order — a valid "children before parents" order
    /// for bottom-up dynamic programming.
    pub fn bottom_up(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.bfs_order.iter().rev().copied()
    }

    /// Iterator over all `(child, parent)` tree edges.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.parent
            .iter()
            .enumerate()
            .filter_map(|(v, p)| p.map(|p| (NodeId::from_index(v), p)))
    }

    /// Walks ancestors of `v` starting at `v` itself, ending at the root.
    pub fn ancestors(&self, v: NodeId) -> Ancestors<'_> {
        Ancestors {
            tree: self,
            cur: Some(v),
        }
    }

    /// Subtree size of every node (`size[v] = |v↓|`), via one bottom-up pass.
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let mut size = vec![1u32; self.len()];
        for v in self.bottom_up() {
            if let Some(p) = self.parent(v) {
                size[p.index()] += size[v.index()];
            }
        }
        size
    }
}

/// Iterator over the ancestors of a node, including the node itself.
#[derive(Clone, Debug)]
pub struct Ancestors<'a> {
    tree: &'a RootedTree,
    cur: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let v = self.cur?;
        self.cur = self.tree.parent(v);
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// A small tree:
    /// ```text
    ///        0
    ///       / \
    ///      1   2
    ///     / \   \
    ///    3   4   5
    /// ```
    fn sample() -> RootedTree {
        RootedTree::from_edges(
            6,
            node(0),
            &[
                (node(0), node(1)),
                (node(2), node(0)),
                (node(1), node(3)),
                (node(4), node(1)),
                (node(5), node(2)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn structure() {
        let t = sample();
        assert_eq!(t.root(), node(0));
        assert_eq!(t.parent(node(3)), Some(node(1)));
        assert_eq!(t.parent(node(0)), None);
        assert_eq!(t.children(node(1)), &[node(3), node(4)]);
        assert_eq!(t.depth(node(5)), 2);
        assert_eq!(t.height(), 2);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn orders() {
        let t = sample();
        assert_eq!(t.bfs_order()[0], node(0));
        // Bottom-up must place children before parents.
        let pos: std::collections::HashMap<NodeId, usize> =
            t.bottom_up().enumerate().map(|(i, v)| (v, i)).collect();
        for (c, p) in t.edges() {
            assert!(pos[&c] < pos[&p], "{c:?} should come before {p:?}");
        }
    }

    #[test]
    fn ancestors_walk() {
        let t = sample();
        let a: Vec<NodeId> = t.ancestors(node(4)).collect();
        assert_eq!(a, vec![node(4), node(1), node(0)]);
    }

    #[test]
    fn subtree_sizes_are_correct() {
        let t = sample();
        let s = t.subtree_sizes();
        assert_eq!(s[0], 6);
        assert_eq!(s[1], 3);
        assert_eq!(s[2], 2);
        assert_eq!(s[3], 1);
    }

    #[test]
    fn from_parents_roundtrip() {
        let t = sample();
        let parents: Vec<Option<NodeId>> =
            (0..6).map(|v| t.parent(NodeId::from_index(v))).collect();
        let t2 = RootedTree::from_parents(node(0), &parents).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn rejects_malformed() {
        // Too few edges.
        assert!(RootedTree::from_edges(3, node(0), &[(node(0), node(1))]).is_err());
        // Cycle (and disconnected node 3).
        assert!(RootedTree::from_edges(
            4,
            node(0),
            &[(node(0), node(1)), (node(1), node(2)), (node(2), node(0))],
        )
        .is_err());
        // Out-of-range root.
        assert!(RootedTree::from_edges(2, node(5), &[(node(0), node(1))]).is_err());
        // Root with a parent.
        assert!(RootedTree::from_parents(node(0), &[Some(node(1)), None]).is_err());
    }

    #[test]
    fn single_node_tree() {
        let t = RootedTree::from_edges(1, node(0), &[]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 0);
        assert!(t.children(node(0)).is_empty());
    }
}
