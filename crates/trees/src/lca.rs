//! Lowest common ancestors: sparse-table RMQ over the Euler tour (O(n log n)
//! build, O(1) query) and binary lifting (O(n log n) build, O(log n) query).
//!
//! Both structures exist so they can cross-check each other and serve as the
//! sequential oracle for the paper's distributed LCA computation (Step 5).

use crate::euler::EulerTour;
use crate::RootedTree;
use graphs::NodeId;

/// O(1)-query LCA via sparse-table range-minimum over the Euler tour.
#[derive(Clone, Debug)]
pub struct SparseTableLca {
    first: Vec<usize>,
    /// `table[k][i]` = index (into the tour) of the minimum-depth entry in
    /// `tour[i .. i + 2^k]`.
    table: Vec<Vec<u32>>,
    depths: Vec<u32>,
    tour: Vec<NodeId>,
}

impl SparseTableLca {
    /// Builds the structure for `tree`.
    pub fn new(tree: &RootedTree) -> Self {
        let e = EulerTour::new(tree);
        let m = e.len();
        let levels = (usize::BITS - m.max(1).leading_zeros()) as usize;
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
        table.push((0..m as u32).collect());
        let mut k = 1;
        while (1 << k) <= m {
            let half = 1 << (k - 1);
            let prev = &table[k - 1];
            let mut row = Vec::with_capacity(m - (1 << k) + 1);
            for i in 0..=(m - (1 << k)) {
                let a = prev[i];
                let b = prev[i + half];
                row.push(if e.depths[a as usize] <= e.depths[b as usize] {
                    a
                } else {
                    b
                });
            }
            table.push(row);
            k += 1;
        }
        SparseTableLca {
            first: e.first,
            table,
            depths: e.depths,
            tour: e.tour,
        }
    }

    /// Returns the lowest common ancestor of `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn lca(&self, u: NodeId, v: NodeId) -> NodeId {
        let (mut a, mut b) = (self.first[u.index()], self.first[v.index()]);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let len = b - a + 1;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize;
        let left = self.table[k][a];
        let right = self.table[k][b + 1 - (1 << k)];
        let best = if self.depths[left as usize] <= self.depths[right as usize] {
            left
        } else {
            right
        };
        self.tour[best as usize]
    }
}

/// O(log n)-query LCA via binary lifting, with ancestor-at-distance queries.
#[derive(Clone, Debug)]
pub struct BinaryLiftingLca {
    /// `up[k][v]` = the `2^k`-th ancestor of `v` (clamped at the root).
    up: Vec<Vec<u32>>,
    depth: Vec<u32>,
}

impl BinaryLiftingLca {
    /// Builds the structure for `tree`.
    pub fn new(tree: &RootedTree) -> Self {
        let n = tree.len();
        let levels = (usize::BITS - n.max(1).leading_zeros()) as usize;
        let mut up: Vec<Vec<u32>> = Vec::with_capacity(levels.max(1));
        let base: Vec<u32> = (0..n)
            .map(|v| {
                tree.parent(NodeId::from_index(v))
                    .map(|p| p.raw())
                    .unwrap_or(v as u32)
            })
            .collect();
        up.push(base);
        for k in 1..levels.max(1) {
            let prev = &up[k - 1];
            let row: Vec<u32> = (0..n).map(|v| prev[prev[v] as usize]).collect();
            up.push(row);
        }
        let depth = (0..n).map(|v| tree.depth(NodeId::from_index(v))).collect();
        BinaryLiftingLca { up, depth }
    }

    /// The ancestor of `v` at distance `d` (clamped at the root).
    pub fn ancestor_at(&self, v: NodeId, d: u32) -> NodeId {
        let mut x = v.raw();
        let mut d = d;
        let mut k = 0;
        while d > 0 && k < self.up.len() {
            if d & 1 == 1 {
                x = self.up[k][x as usize];
            }
            d >>= 1;
            k += 1;
        }
        NodeId::new(x)
    }

    /// Returns the lowest common ancestor of `u` and `v`.
    pub fn lca(&self, u: NodeId, v: NodeId) -> NodeId {
        let (mut a, mut b) = (u, v);
        let (da, db) = (self.depth[a.index()], self.depth[b.index()]);
        if da > db {
            a = self.ancestor_at(a, da - db);
        } else if db > da {
            b = self.ancestor_at(b, db - da);
        }
        if a == b {
            return a;
        }
        for k in (0..self.up.len()).rev() {
            let (na, nb) = (self.up[k][a.index()], self.up[k][b.index()]);
            if na != nb {
                a = NodeId::new(na);
                b = NodeId::new(nb);
            }
        }
        NodeId::new(self.up[0][a.index()])
    }

    /// Depth of `v`.
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn node(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn sample() -> RootedTree {
        // 0 — {1, 2}; 1 — {3, 4}; 2 — {5}; 4 — {6}
        RootedTree::from_edges(
            7,
            node(0),
            &[
                (node(0), node(1)),
                (node(0), node(2)),
                (node(1), node(3)),
                (node(1), node(4)),
                (node(2), node(5)),
                (node(4), node(6)),
            ],
        )
        .unwrap()
    }

    /// Naive LCA by walking parent pointers.
    fn naive_lca(tree: &RootedTree, u: NodeId, v: NodeId) -> NodeId {
        let au: Vec<NodeId> = tree.ancestors(u).collect();
        let set: std::collections::HashSet<NodeId> = au.into_iter().collect();
        tree.ancestors(v)
            .find(|a| set.contains(a))
            .expect("trees always share the root")
    }

    #[test]
    fn known_lcas() {
        let t = sample();
        let st = SparseTableLca::new(&t);
        let bl = BinaryLiftingLca::new(&t);
        for (u, v, want) in [
            (3, 4, 1),
            (3, 6, 1),
            (3, 5, 0),
            (6, 2, 0),
            (4, 6, 4),
            (0, 6, 0),
            (5, 5, 5),
        ] {
            assert_eq!(st.lca(node(u), node(v)), node(want), "st {u},{v}");
            assert_eq!(bl.lca(node(u), node(v)), node(want), "bl {u},{v}");
        }
    }

    #[test]
    fn structures_agree_with_naive_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(99);
        for n in [2usize, 5, 17, 64, 200] {
            // Random parent array: parent of v is a random earlier node.
            let mut parents: Vec<Option<NodeId>> = vec![None];
            for v in 1..n {
                parents.push(Some(node(rng.gen_range(0..v as u32))));
            }
            let t = RootedTree::from_parents(node(0), &parents).unwrap();
            let st = SparseTableLca::new(&t);
            let bl = BinaryLiftingLca::new(&t);
            for _ in 0..200 {
                let u = node(rng.gen_range(0..n as u32));
                let v = node(rng.gen_range(0..n as u32));
                let want = naive_lca(&t, u, v);
                assert_eq!(st.lca(u, v), want);
                assert_eq!(bl.lca(u, v), want);
            }
        }
    }

    #[test]
    fn ancestor_at_distance() {
        let t = sample();
        let bl = BinaryLiftingLca::new(&t);
        assert_eq!(bl.ancestor_at(node(6), 1), node(4));
        assert_eq!(bl.ancestor_at(node(6), 2), node(1));
        assert_eq!(bl.ancestor_at(node(6), 3), node(0));
        // Clamped at the root.
        assert_eq!(bl.ancestor_at(node(6), 99), node(0));
        assert_eq!(bl.depth(node(6)), 3);
    }

    #[test]
    fn lca_on_path_tree() {
        let n = 50;
        let parents: Vec<Option<NodeId>> = (0..n)
            .map(|v| if v == 0 { None } else { Some(node(v - 1)) })
            .collect();
        let t = RootedTree::from_parents(node(0), &parents).unwrap();
        let st = SparseTableLca::new(&t);
        let bl = BinaryLiftingLca::new(&t);
        assert_eq!(st.lca(node(30), node(45)), node(30));
        assert_eq!(bl.lca(node(30), node(45)), node(30));
        assert_eq!(bl.lca(node(49), node(0)), node(0));
    }
}
