//! Spanning trees of graphs: BFS, DFS, randomized-Kruskal, and Wilson's
//! uniform spanning trees; plus conversion to [`RootedTree`].

use crate::{RootedTree, TreeError};
use graphs::{EdgeId, NodeId, WeightedGraph};
use rand::Rng;

/// Edges of the BFS spanning tree from `root`.
///
/// Returns fewer than `n − 1` edges if the graph is disconnected.
pub fn bfs_spanning_edges(g: &WeightedGraph, root: NodeId) -> Vec<EdgeId> {
    let r = graphs::traversal::bfs(g, root);
    let mut edges = Vec::new();
    for v in g.nodes() {
        if let Some(p) = r.parent[v.index()] {
            edges.push(g.edge_between(p, v).expect("BFS parent must be a neighbor"));
        }
    }
    edges
}

/// Edges of the DFS spanning tree from `root`.
pub fn dfs_spanning_edges(g: &WeightedGraph, root: NodeId) -> Vec<EdgeId> {
    let r = graphs::traversal::dfs(g, root);
    let mut edges = Vec::new();
    for v in g.nodes() {
        if let Some(p) = r.parent[v.index()] {
            edges.push(g.edge_between(p, v).expect("DFS parent must be a neighbor"));
        }
    }
    edges
}

/// A random spanning tree via Kruskal on uniformly shuffled edges.
/// (Not uniform over all spanning trees — see [`wilson_spanning_tree`] for
/// that — but fast and well-mixed for test purposes.)
pub fn random_spanning_edges<R: Rng>(g: &WeightedGraph, rng: &mut R) -> Vec<EdgeId> {
    use rand::seq::SliceRandom;
    let mut order: Vec<EdgeId> = g.edges().collect();
    order.shuffle(rng);
    let mut dsu = crate::DisjointSets::new(g.node_count());
    let mut edges = Vec::new();
    for e in order {
        let (u, v) = g.endpoints(e);
        if dsu.union(u.index(), v.index()) {
            edges.push(e);
        }
    }
    edges.sort_unstable();
    edges
}

/// Wilson's algorithm: a **uniformly random** spanning tree via loop-erased
/// random walks. Requires a connected graph.
///
/// # Errors
///
/// Returns [`TreeError::NotATree`] if the graph is disconnected (the walk
/// cannot reach the root from some node).
pub fn wilson_spanning_tree<R: Rng>(
    g: &WeightedGraph,
    root: NodeId,
    rng: &mut R,
) -> Result<Vec<EdgeId>, TreeError> {
    let n = g.node_count();
    let mut in_tree = vec![false; n];
    in_tree[root.index()] = true;
    let mut next: Vec<Option<NodeId>> = vec![None; n];
    for start in 0..n {
        if in_tree[start] {
            continue;
        }
        // Random walk from `start` until hitting the tree, recording the
        // latest exit edge from each node (loop erasure).
        let mut v = NodeId::from_index(start);
        let mut steps = 0usize;
        let budget = 100 * n * n + 1000;
        while !in_tree[v.index()] {
            let nbrs = g.neighbors(v);
            if nbrs.is_empty() {
                return Err(TreeError::NotATree {
                    reason: format!("isolated node {v}"),
                });
            }
            let a = &nbrs[rng.gen_range(0..nbrs.len())];
            next[v.index()] = Some(a.neighbor);
            v = a.neighbor;
            steps += 1;
            if steps > budget {
                return Err(TreeError::NotATree {
                    reason: "random walk did not reach the tree (disconnected?)".to_string(),
                });
            }
        }
        // Retrace the loop-erased path and add it to the tree.
        let mut v = NodeId::from_index(start);
        while !in_tree[v.index()] {
            in_tree[v.index()] = true;
            v = next[v.index()].expect("walked nodes have a successor");
        }
    }
    let mut edges = Vec::new();
    for v in 0..n {
        if v != root.index() {
            if let Some(u) = next[v] {
                // Only nodes whose pointer was consumed into the tree count;
                // all non-root nodes have one.
                if in_tree[v] {
                    edges.push(
                        g.edge_between(NodeId::from_index(v), u)
                            .expect("walk steps follow edges"),
                    );
                }
            }
        }
    }
    edges.sort_unstable();
    Ok(edges)
}

/// Converts a set of tree edge ids into a [`RootedTree`] rooted at `root`.
///
/// # Errors
///
/// Returns [`TreeError`] if the edges do not form a spanning tree.
pub fn to_rooted(
    g: &WeightedGraph,
    tree_edges: &[EdgeId],
    root: NodeId,
) -> Result<RootedTree, TreeError> {
    let pairs: Vec<(NodeId, NodeId)> = tree_edges.iter().map(|&e| g.endpoints(e)).collect();
    RootedTree::from_edges(g.node_count(), root, &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bfs_tree_is_spanning_and_shallow() {
        let g = generators::grid2d(5, 5).unwrap();
        let edges = bfs_spanning_edges(&g, NodeId::new(0));
        assert_eq!(edges.len(), 24);
        let t = to_rooted(&g, &edges, NodeId::new(0)).unwrap();
        // BFS tree depth equals the eccentricity of the root.
        assert_eq!(t.height(), 8);
    }

    #[test]
    fn dfs_tree_is_spanning() {
        let g = generators::grid2d(4, 4).unwrap();
        let edges = dfs_spanning_edges(&g, NodeId::new(0));
        assert_eq!(edges.len(), 15);
        assert!(to_rooted(&g, &edges, NodeId::new(0)).is_ok());
    }

    #[test]
    fn random_spanning_is_spanning() {
        let mut rng = StdRng::seed_from_u64(41);
        let g = generators::erdos_renyi_connected(40, 0.2, &mut rng).unwrap();
        for _ in 0..5 {
            let edges = random_spanning_edges(&g, &mut rng);
            assert_eq!(edges.len(), 39);
            assert!(to_rooted(&g, &edges, NodeId::new(0)).is_ok());
        }
    }

    #[test]
    fn wilson_produces_spanning_trees() {
        let mut rng = StdRng::seed_from_u64(43);
        let g = generators::cycle(10).unwrap();
        let edges = wilson_spanning_tree(&g, NodeId::new(0), &mut rng).unwrap();
        assert_eq!(edges.len(), 9);
        assert!(to_rooted(&g, &edges, NodeId::new(0)).is_ok());
    }

    #[test]
    fn wilson_uniformity_smoke() {
        // On a triangle there are exactly 3 spanning trees; with many samples
        // each should appear roughly 1/3 of the time.
        let g = generators::cycle(3).unwrap();
        let mut rng = StdRng::seed_from_u64(47);
        let mut counts = std::collections::HashMap::new();
        let trials = 3000;
        for _ in 0..trials {
            let edges = wilson_spanning_tree(&g, NodeId::new(0), &mut rng).unwrap();
            *counts.entry(edges).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 3);
        for (_, c) in counts {
            let frac = c as f64 / trials as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.05, "frac = {frac}");
        }
    }

    #[test]
    fn wilson_fails_on_disconnected() {
        let g = graphs::WeightedGraph::from_edges(4, [(0, 1, 1), (2, 3, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(wilson_spanning_tree(&g, NodeId::new(0), &mut rng).is_err());
    }
}
