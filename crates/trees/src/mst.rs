//! Sequential minimum spanning trees/forests: Kruskal, Prim, Borůvka.
//!
//! All three support custom edge keys. The greedy tree packing of Thorup
//! orders edges by the lexicographic key `(load, weight, edge id)`, which is
//! a strict total order, so the minimum spanning tree is unique and every
//! algorithm (including the distributed one) must produce the same tree —
//! the tests exploit that.

use crate::DisjointSets;
use graphs::{EdgeId, NodeId, Weight, WeightedGraph};

/// The result of an MST/MSF computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MstResult {
    /// Chosen edges, sorted by edge id.
    pub edges: Vec<EdgeId>,
    /// Sum of the *graph* weights of the chosen edges (even when a custom
    /// key was used for comparisons).
    pub total_weight: Weight,
}

impl MstResult {
    /// Returns `true` if the result spans a connected graph on `n` nodes
    /// (i.e. it is a tree, not a forest).
    pub fn is_spanning_tree(&self, n: usize) -> bool {
        self.edges.len() + 1 == n
    }

    /// The tree edges as `(u, v)` endpoint pairs.
    pub fn endpoint_pairs(&self, g: &WeightedGraph) -> Vec<(NodeId, NodeId)> {
        self.edges.iter().map(|&e| g.endpoints(e)).collect()
    }
}

/// Kruskal's algorithm under the natural key `(weight, edge id)`.
/// Returns a spanning forest if the graph is disconnected.
pub fn kruskal(g: &WeightedGraph) -> MstResult {
    kruskal_by(g, |e, w| (w, e.raw()))
}

/// Kruskal's algorithm under a custom total order on edges.
///
/// `key(e, w)` must be a strict total order for the MST to be unique.
pub fn kruskal_by<K: Ord>(g: &WeightedGraph, key: impl Fn(EdgeId, Weight) -> K) -> MstResult {
    let mut order: Vec<EdgeId> = g.edges().collect();
    order.sort_by_key(|&e| key(e, g.weight(e)));
    let mut dsu = DisjointSets::new(g.node_count());
    let mut edges = Vec::new();
    let mut total = 0;
    for e in order {
        let (u, v) = g.endpoints(e);
        if dsu.union(u.index(), v.index()) {
            edges.push(e);
            total += g.weight(e);
        }
    }
    edges.sort_unstable();
    MstResult {
        edges,
        total_weight: total,
    }
}

/// Prim's algorithm (binary heap), restarted per component, under the
/// natural key `(weight, edge id)`.
pub fn prim(g: &WeightedGraph) -> MstResult {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.node_count();
    let mut in_tree = vec![false; n];
    let mut edges = Vec::new();
    let mut total = 0;
    let mut heap: BinaryHeap<Reverse<(Weight, u32, u32)>> = BinaryHeap::new();
    for start in 0..n {
        if in_tree[start] {
            continue;
        }
        in_tree[start] = true;
        for a in g.neighbors(NodeId::from_index(start)) {
            heap.push(Reverse((a.weight, a.edge.raw(), a.neighbor.raw())));
        }
        while let Some(Reverse((w, e, v))) = heap.pop() {
            if in_tree[v as usize] {
                continue;
            }
            in_tree[v as usize] = true;
            edges.push(EdgeId::new(e));
            total += w;
            for a in g.neighbors(NodeId::new(v)) {
                if !in_tree[a.neighbor.index()] {
                    heap.push(Reverse((a.weight, a.edge.raw(), a.neighbor.raw())));
                }
            }
        }
    }
    edges.sort_unstable();
    MstResult {
        edges,
        total_weight: total,
    }
}

/// Borůvka's algorithm under a custom total order on edges. This is the
/// sequential mirror of the distributed MST (which is Borůvka-structured),
/// so agreement between the two is a strong correctness check.
pub fn boruvka_by<K: Ord + Clone>(
    g: &WeightedGraph,
    key: impl Fn(EdgeId, Weight) -> K,
) -> MstResult {
    let n = g.node_count();
    let mut dsu = DisjointSets::new(n);
    let mut chosen: Vec<EdgeId> = Vec::new();
    let mut total = 0;
    loop {
        // Minimum-key outgoing edge per component.
        let mut best: std::collections::HashMap<usize, (K, EdgeId)> =
            std::collections::HashMap::new();
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            let (ru, rv) = (dsu.find(u.index()), dsu.find(v.index()));
            if ru == rv {
                continue;
            }
            let k = key(e, g.weight(e));
            for r in [ru, rv] {
                match best.get(&r) {
                    Some((bk, _)) if *bk <= k => {}
                    _ => {
                        best.insert(r, (k.clone(), e));
                    }
                }
            }
        }
        if best.is_empty() {
            break;
        }
        let mut progressed = false;
        for (_, (_, e)) in best {
            let (u, v) = g.endpoints(e);
            if dsu.union(u.index(), v.index()) {
                chosen.push(e);
                total += g.weight(e);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    chosen.sort_unstable();
    MstResult {
        edges: chosen,
        total_weight: total,
    }
}

/// Borůvka's algorithm under the natural key `(weight, edge id)`.
pub fn boruvka(g: &WeightedGraph) -> MstResult {
    boruvka_by(g, |e, w| (w, e.raw()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn known_mst() {
        // Square with a heavy diagonal: MST must avoid the diagonal.
        let g = graphs::WeightedGraph::from_edges(
            4,
            [(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4), (0, 2, 10)],
        )
        .unwrap();
        let k = kruskal(&g);
        assert_eq!(k.total_weight, 6);
        assert!(k.is_spanning_tree(4));
        assert_eq!(prim(&g).total_weight, 6);
        assert_eq!(boruvka(&g).total_weight, 6);
    }

    #[test]
    fn algorithms_agree_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(31);
        for n in [5usize, 20, 60] {
            let base = generators::erdos_renyi_connected(n, 0.15, &mut rng).unwrap();
            let g = generators::randomize_weights(&base, 1, 1000, &mut rng).unwrap();
            let k = kruskal(&g);
            let p = prim(&g);
            let b = boruvka(&g);
            assert_eq!(k.total_weight, p.total_weight);
            assert_eq!(k.total_weight, b.total_weight);
            assert!(k.is_spanning_tree(n));
            // Under the strict (w, id) order the MST is unique.
            assert_eq!(k.edges, b.edges);
        }
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let g = graphs::WeightedGraph::from_edges(5, [(0, 1, 1), (2, 3, 2)]).unwrap();
        let k = kruskal(&g);
        assert_eq!(k.edges.len(), 2);
        assert!(!k.is_spanning_tree(5));
        assert_eq!(prim(&g).edges, k.edges);
        assert_eq!(boruvka(&g).edges, k.edges);
    }

    #[test]
    fn custom_key_inverts_preference() {
        // Same square; under the *inverted* weight order the "MST" is the
        // maximum spanning tree.
        let g = graphs::WeightedGraph::from_edges(
            4,
            [(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4), (0, 2, 10)],
        )
        .unwrap();
        // Heaviest usable edges: 10 (0,2), 4 (3,0); 3 (2,3) would close the
        // cycle 0-2-3, so 2 (1,2) joins node 1 instead.
        let max_tree = kruskal_by(&g, |e, w| (std::cmp::Reverse(w), e.raw()));
        assert_eq!(max_tree.total_weight, 10 + 4 + 2);
        let b = boruvka_by(&g, |e, w| (std::cmp::Reverse(w), e.raw()));
        assert_eq!(b.edges, max_tree.edges);
    }

    #[test]
    fn endpoint_pairs_match_graph() {
        let g = graphs::WeightedGraph::from_edges(3, [(0, 1, 1), (1, 2, 1), (0, 2, 5)]).unwrap();
        let k = kruskal(&g);
        let pairs = k.endpoint_pairs(&g);
        assert_eq!(pairs.len(), 2);
        for (u, v) in pairs {
            assert!(g.edge_between(u, v).is_some());
        }
    }

    #[test]
    fn single_node_and_empty() {
        let g1 = graphs::WeightedGraph::from_edges(1, []).unwrap();
        assert!(kruskal(&g1).edges.is_empty());
        assert!(kruskal(&g1).is_spanning_tree(1));
        let g0 = graphs::WeightedGraph::from_edges(0, []).unwrap();
        assert!(prim(&g0).edges.is_empty());
    }
}
