//! Euler tours of rooted trees.

use crate::RootedTree;
use graphs::NodeId;

/// The Euler tour of a rooted tree: the DFS visit sequence in which every
/// node appears once per entry from a child, `2n − 1` entries total.
///
/// Used by the sparse-table LCA and as the sequential mirror of the paper's
/// subtree computations.
#[derive(Clone, Debug)]
pub struct EulerTour {
    /// The visit sequence, length `2n − 1`.
    pub tour: Vec<NodeId>,
    /// Depth of each tour entry.
    pub depths: Vec<u32>,
    /// `first[v]` = index of the first occurrence of `v` in the tour.
    pub first: Vec<usize>,
}

impl EulerTour {
    /// Computes the Euler tour of `tree` (children visited in sorted order).
    pub fn new(tree: &RootedTree) -> Self {
        let n = tree.len();
        let mut tour = Vec::with_capacity(2 * n.saturating_sub(1) + 1);
        let mut depths = Vec::with_capacity(tour.capacity());
        let mut first = vec![usize::MAX; n];
        // Iterative DFS that re-pushes the parent after each child.
        // Stack entries: (node, next-child-index).
        let mut stack: Vec<(NodeId, usize)> = vec![(tree.root(), 0)];
        while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
            if *ci == 0 {
                // First arrival at v (or we record every arrival below).
            }
            if first[v.index()] == usize::MAX {
                first[v.index()] = tour.len();
            }
            tour.push(v);
            depths.push(tree.depth(v));
            let children = tree.children(v);
            if *ci < children.len() {
                let c = children[*ci];
                *ci += 1;
                stack.push((c, 0));
            } else {
                stack.pop();
                // Parent will be re-recorded on return by the next loop
                // iteration — but only if it still has children to process;
                // if not, we must not duplicate. Handle by recording returns
                // explicitly below.
                if let Some(&mut (_p, _)) = stack.last_mut() {
                    // fallthrough: loop records parent again on next pass
                } else {
                    break;
                }
            }
        }
        EulerTour {
            tour,
            depths,
            first,
        }
    }

    /// Length of the tour (`2n − 1` for `n ≥ 1`).
    pub fn len(&self) -> usize {
        self.tour.len()
    }

    /// Returns `true` if the tour is empty (zero-node tree).
    pub fn is_empty(&self) -> bool {
        self.tour.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn sample() -> RootedTree {
        // 0 — {1, 2}; 1 — {3, 4}; 2 — {5}
        RootedTree::from_edges(
            6,
            node(0),
            &[
                (node(0), node(1)),
                (node(0), node(2)),
                (node(1), node(3)),
                (node(1), node(4)),
                (node(2), node(5)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn tour_has_correct_length_and_first_occurrences() {
        let t = sample();
        let e = EulerTour::new(&t);
        assert_eq!(e.len(), 2 * 6 - 1);
        assert_eq!(e.tour[0], node(0));
        for v in 0..6 {
            let f = e.first[v];
            assert!(f < e.len());
            assert_eq!(e.tour[f], node(v as u32));
        }
    }

    #[test]
    fn consecutive_entries_differ_by_one_level() {
        let t = sample();
        let e = EulerTour::new(&t);
        for w in e.depths.windows(2) {
            let diff = (w[0] as i64 - w[1] as i64).abs();
            assert_eq!(diff, 1, "Euler tour depths must change by exactly 1");
        }
    }

    #[test]
    fn expected_tour_for_sample() {
        let t = sample();
        let e = EulerTour::new(&t);
        let ids: Vec<u32> = e.tour.iter().map(|v| v.raw()).collect();
        assert_eq!(ids, vec![0, 1, 3, 1, 4, 1, 0, 2, 5, 2, 0]);
    }

    #[test]
    fn single_node_tour() {
        let t = RootedTree::from_edges(1, node(0), &[]).unwrap();
        let e = EulerTour::new(&t);
        assert_eq!(e.len(), 1);
        assert!(!e.is_empty());
        assert_eq!(e.first[0], 0);
    }

    #[test]
    fn path_tree_tour() {
        let t = RootedTree::from_edges(
            4,
            node(0),
            &[(node(0), node(1)), (node(1), node(2)), (node(2), node(3))],
        )
        .unwrap();
        let e = EulerTour::new(&t);
        let ids: Vec<u32> = e.tour.iter().map(|v| v.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 2, 1, 0]);
    }
}
