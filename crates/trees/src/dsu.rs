//! Union-find (disjoint set union) with path halving and union by size.

/// Union-find over `0..n` with path halving and union by size.
///
/// # Example
///
/// ```
/// use trees::DisjointSets;
///
/// let mut dsu = DisjointSets::new(4);
/// assert!(dsu.union(0, 1));
/// assert!(!dsu.union(1, 0)); // already joined
/// assert!(dsu.same(0, 1));
/// assert_eq!(dsu.set_count(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Finds the representative of `x`'s set (with path halving).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.sets -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union_find() {
        let mut d = DisjointSets::new(6);
        assert_eq!(d.set_count(), 6);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert!(!d.union(1, 0));
        assert!(d.union(0, 2));
        assert_eq!(d.set_count(), 3);
        assert!(d.same(1, 3));
        assert!(!d.same(1, 4));
        assert_eq!(d.set_size(3), 4);
        assert_eq!(d.set_size(5), 1);
    }

    #[test]
    fn chain_unions_compress() {
        let n = 1000;
        let mut d = DisjointSets::new(n);
        for i in 0..n - 1 {
            d.union(i, i + 1);
        }
        assert_eq!(d.set_count(), 1);
        for i in 0..n {
            assert_eq!(d.find(i), d.find(0));
        }
    }

    #[test]
    fn empty_is_fine() {
        let d = DisjointSets::new(0);
        assert!(d.is_empty());
        assert_eq!(d.set_count(), 0);
    }
}
