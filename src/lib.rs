//! Umbrella crate for the distributed minimum-cut reproduction.
//!
//! Re-exports the workspace crates so examples and downstream users can
//! depend on a single package:
//!
//! * [`graphs`] — weighted undirected graphs and generators,
//! * [`trees`] — rooted trees, LCA, sequential MSTs,
//! * [`congest`] — the CONGEST-model simulator,
//! * [`mincut`] — the paper's algorithms (distributed and sequential).

pub use congest;
pub use graphs;
pub use mincut;
pub use trees;
