//! Chaos demo: kill the elected leader mid-MST on a lossy 24×24 torus
//! and watch the self-healing driver detect the crash, re-elect, and
//! certify the recovered minimum cut against the sequential oracle.
//!
//! ```text
//! cargo run --release --example chaos_demo
//! ```
//!
//! The adversary is the shared CI chaos plan (`mincut-bench`'s
//! `SMOKE_FAULTS` link faults — 5% drops, 2.5% duplication, delay
//! window 2 — plus the `SMOKE_CRASHES` leader kill); this example
//! re-states it literally so the umbrella crate needs no bench
//! dependency. The same adversary is budgeted by the `chaos_gate` CI
//! binary, so what the demo narrates is what CI enforces.

use mincut_repro::congest::sim::{CrashEvent, FaultPlan};
use mincut_repro::graphs::generators;
use mincut_repro::mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut_repro::mincut::dist::{recover_mincut, RecoverConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::torus2d(24, 24)?;
    println!(
        "network: torus24x24, n = {}, m = {}",
        g.node_count(),
        g.edge_count()
    );

    // The crash-free baseline, under the same link faults: where do the
    // virtual rounds go? (This is the schedule the assassin reads.)
    let link_faults = FaultPlan::with_drop(50, 0xBE7C4).delayed(2).duplicated(25);
    let clean = exact_mincut(
        &g,
        &ExactConfig::default().with_fault_plan(link_faults.clone()),
    )?;
    println!("\ncrash-free run: λ = {}", clean.cut.value);
    let mut consumed = 0u64;
    for p in clean.ledger.phases() {
        if consumed < 220 {
            println!(
                "  rounds {:>4}..{:<4} {}",
                consumed,
                consumed + p.rounds,
                p.name
            );
        }
        consumed += p.rounds;
    }
    println!(
        "  ... {} phases, {} rounds total",
        clean.ledger.phases().len(),
        consumed
    );

    // Kill node 0 — the leader under the min-id election — in the middle
    // of the first MST fragment-growth level (`mstA.l0.hook` in the
    // schedule printed above).
    let plan = FaultPlan {
        crashes: vec![CrashEvent {
            node: 0,
            at_round: 114,
            rejoin: None,
        }],
        ..link_faults
    };
    println!("\nassassin: node 0 (the elected leader) crashes at round 114");
    let r = recover_mincut(&g, &RecoverConfig::default().with_plan(plan))?;

    println!("recovered λ       : {}", r.cut.value);
    println!("oracle (survivors): {:?}", r.oracle);
    println!("epochs            : {}", r.epochs);
    println!("dead              : {:?}", r.dead);
    println!("survivors         : {} nodes", r.survivors.len());
    println!(
        "recovery overhead : {} of {} rounds, {} of {} messages",
        r.recovery_rounds, r.rounds, r.recovery_messages, r.messages
    );

    // The merged ledger, grouped by phase stem: the `recover.e1` rows
    // are the aborted first attempt plus the census; everything after
    // is the surviving 575-node re-run under the new leader.
    println!("\nper-stem accounting (rounds / messages):");
    for (stem, grp) in r.ledger.grouped_by_stem() {
        println!("  {:<24} {:>6} / {:>8}", stem, grp.rounds, grp.messages);
    }
    Ok(())
}
