//! Domain scenario: find the bandwidth bottleneck of an ad-hoc wireless
//! network. The nodes of a random geometric graph (radio range ≈ 0.18)
//! cooperatively compute the global minimum cut — the links whose failure
//! partitions the network — using only `O(log n)`-bit messages.
//!
//! ```text
//! cargo run --release --example network_bottleneck
//! ```

use mincut_repro::graphs::{generators, traversal};
use mincut_repro::mincut::dist::driver::{exact_mincut, ExactConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2024);
    let g = generators::random_geometric(160, 0.18, &mut rng)?;
    let diameter = traversal::two_sweep_diameter(&g);
    println!(
        "ad-hoc network: n = {}, m = {}, diameter ≈ {diameter}",
        g.node_count(),
        g.edge_count()
    );

    let result = exact_mincut(&g, &ExactConfig::default())?;
    let weak_side = result.cut.smaller_side();
    println!();
    println!("bottleneck capacity (min cut): {}", result.cut.value);
    println!(
        "weak partition: {} nodes {:?}{}",
        weak_side.len(),
        &weak_side[..weak_side.len().min(12)],
        if weak_side.len() > 12 { " …" } else { "" }
    );
    println!();
    println!("CONGEST cost:");
    println!("  rounds   : {}", result.rounds);
    println!("  messages : {}", result.messages);
    let sqrt_n_d = (g.node_count() as f64).sqrt() + diameter as f64;
    println!(
        "  rounds / (√n + D) = {:.1}  (the paper's Õ(√n + D) scaling unit)",
        result.rounds as f64 / sqrt_n_d
    );
    Ok(())
}
