//! Domain scenario: find the bandwidth bottleneck of an ad-hoc wireless
//! network. The nodes of a random geometric graph (radio range ≈ 0.18)
//! cooperatively compute the global minimum cut — the links whose failure
//! partitions the network — using only `O(log n)`-bit messages. The walk
//! then zooms into where the MST construction (phase A, the dominant
//! message sink of each packed tree) spends its traffic, and what the
//! optimized protocol's frozen-fragment skip saves over the legacy one.
//!
//! ```text
//! cargo run --release --example network_bottleneck
//! ```

use mincut_repro::congest::MetricsLedger;
use mincut_repro::graphs::{generators, traversal};
use mincut_repro::mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut_repro::mincut::dist::mst::{MstAMode, MstConfig};

/// Sums `(messages, rounds, phases)` of the `mstA` sub-phases ending in
/// `suffix` ("" aggregates all of phase A).
fn msta(ledger: &MetricsLedger, suffix: &str) -> (u64, u64, usize) {
    ledger
        .phases()
        .iter()
        .filter(|p| p.name.starts_with("mstA") && p.name.ends_with(suffix))
        .fold((0, 0, 0), |(m, r, c), p| {
            (m + p.messages, r + p.rounds, c + 1)
        })
}

/// Number of phase-A growth levels the run went through (levels appear
/// as `mstA.l{level}.…` sub-phases; every level runs its cand/dec leg,
/// so counting those is exact for either mode).
fn levels(ledger: &MetricsLedger) -> usize {
    let (_, _, cd) = msta(ledger, ".cd");
    let (_, _, cand) = msta(ledger, ".cand");
    cd.max(cand)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2024);
    let g = generators::random_geometric(160, 0.18, &mut rng)?;
    let diameter = traversal::two_sweep_diameter(&g);
    println!(
        "ad-hoc network: n = {}, m = {}, diameter ≈ {diameter}",
        g.node_count(),
        g.edge_count()
    );

    let result = exact_mincut(&g, &ExactConfig::default())?;
    let weak_side = result.cut.smaller_side();
    println!();
    println!("bottleneck capacity (min cut): {}", result.cut.value);
    println!(
        "weak partition: {} nodes {:?}{}",
        weak_side.len(),
        &weak_side[..weak_side.len().min(12)],
        if weak_side.len() > 12 { " …" } else { "" }
    );
    println!();
    println!("CONGEST cost:");
    println!("  rounds   : {}", result.rounds);
    println!("  messages : {}", result.messages);
    let sqrt_n_d = (g.node_count() as f64).sqrt() + diameter as f64;
    println!(
        "  rounds / (√n + D) = {:.1}  (the paper's Õ(√n + D) scaling unit)",
        result.rounds as f64 / sqrt_n_d
    );

    // Where do the MST messages go? Phase A grows ⌈√n⌉-capped fragments
    // level by level; its three message species are the boundary
    // announcements (exch), the candidate/decision convergecast (fused
    // into one `.cd` pass in the optimized protocol), and the hook
    // handshake + re-root floods.
    let (a_msgs, a_rounds, a_phases) = msta(&result.ledger, "");
    println!();
    println!(
        "mstA breakdown (optimized, {} trees packed):",
        result.trees_packed
    );
    println!(
        "  total    : {a_msgs} msgs over {a_rounds} rounds in {a_phases} sub-phases ({} growth levels)",
        levels(&result.ledger)
    );
    for (label, suffix) in [
        ("exch (boundary announcements)", ".exch"),
        ("cd   (fused cand/dec pass)   ", ".cd"),
        ("hook (mating + re-root)      ", ".hook"),
    ] {
        let (m, r, c) = msta(&result.ledger, suffix);
        println!(
            "  {label}: {m} msgs / {r} rounds in {c} phases ({:.0}% of phase A)",
            100.0 * m as f64 / a_msgs.max(1) as f64
        );
    }
    // Freeze statistics, read off the ledger: once a fragment hits the
    // size cap it freezes — frozen nodes skip the cand/dec leg entirely,
    // and a level whose boundary didn't change skips its exch phase
    // (the driver elides globally silent exchanges). Fewer exch phases
    // than levels = levels that moved zero announcement messages.
    let lv = levels(&result.ledger);
    let (_, _, exch_phases) = msta(&result.ledger, ".exch");
    println!(
        "  freeze effect: {}/{lv} levels needed no boundary announcements at all",
        lv - exch_phases.min(lv)
    );

    // The same run under the legacy phase A (per-level exch + separate
    // cand and dec convergecasts + shared-coin mating) — identical cut,
    // identical trees, ~2× the phase-A traffic.
    let legacy_cfg = ExactConfig {
        mst: MstConfig {
            mode: MstAMode::Legacy,
            ..Default::default()
        },
        ..Default::default()
    };
    let legacy = exact_mincut(&g, &legacy_cfg)?;
    assert_eq!(legacy.cut.value, result.cut.value);
    let (l_msgs, l_rounds, _) = msta(&legacy.ledger, "");
    println!();
    println!(
        "legacy phase A on the same network: {l_msgs} msgs / {l_rounds} rounds — the optimized protocol moves {:.2}x fewer mstA messages",
        l_msgs as f64 / a_msgs.max(1) as f64
    );
    Ok(())
}
