//! Quickstart: build a network, run the exact distributed minimum cut, and
//! inspect the CONGEST cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mincut_repro::graphs::generators;
use mincut_repro::mincut::dist::driver::{exact_mincut, ExactConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two 40-node communities joined by exactly 4 edges: λ = 4.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
    let planted = generators::community_pair(40, 6, 4, &mut rng)?;
    let g = &planted.graph;
    println!(
        "network: n = {}, m = {}, planted cut = {}",
        g.node_count(),
        g.edge_count(),
        planted.planted_value
    );

    let result = exact_mincut(g, &ExactConfig::default())?;
    println!("minimum cut value : {}", result.cut.value);
    println!(
        "smaller side      : {} nodes",
        result.cut.smaller_side().len()
    );
    println!("trees packed      : {}", result.trees_packed);
    println!("CONGEST rounds    : {}", result.rounds);
    println!("messages          : {}", result.messages);

    // Independent verification.
    mincut_repro::mincut::verify::check_cut(g, &result.cut)?;
    let oracle = mincut_repro::mincut::seq::stoer_wagner(g)?;
    assert_eq!(
        result.cut.value, oracle.value,
        "distributed == Stoer–Wagner"
    );
    println!("verified against Stoer–Wagner: OK");
    Ok(())
}
