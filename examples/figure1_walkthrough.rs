//! Walkthrough of the paper's Figure 1: prints the tree, fragments, `T_F`,
//! `A(15)`, merging nodes, `T'_F`, and the LCA case of every non-tree edge,
//! then runs the distributed pipeline on the instance and shows that every
//! node ends up knowing `C(v↓)`.
//!
//! ```text
//! cargo run --release --example figure1_walkthrough
//! ```

use mincut_repro::graphs::NodeId;
use mincut_repro::mincut::figure1::{Figure1, EXTRA_EDGES};
use mincut_repro::mincut::reference::ReferenceStructure;
use mincut_repro::trees::lca::SparseTableLca;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fig = Figure1::build();
    let r = ReferenceStructure::new(&fig.graph, fig.tree.clone(), &fig.fragments);

    println!("Figure 1 instance (16 nodes, 4 fragments)");
    println!("------------------------------------------");
    println!("               0");
    println!("             /   \\");
    println!("            1     2");
    println!("          /  \\     \\");
    println!("         3    4     5");
    println!("        / \\  / \\   /  \\");
    println!("       6  7 8   9 10  11");
    println!("       |  | |   |");
    println!("      12 13 14 15");
    println!();

    // (a)/(b): fragments and the fragment tree.
    println!("fragments (label: members, root):");
    for (i, members) in fig.fragments.members().iter().enumerate() {
        let ids: Vec<u32> = members.iter().map(|v| v.raw()).collect();
        println!("  F{i}: {ids:?}  root r{i} = {}", fig.fragments.root_of[i]);
    }
    println!("T_F parents: {:?}  (F1, F2, F3 hang off F0)", r.tf_parent);
    println!();

    // (c): the ancestor set A(15), as drawn in the paper.
    let a15: Vec<u32> = r.a_sets[15].iter().map(|v| v.raw()).collect();
    println!("A(15) = {a15:?}  (15 in F2; ancestors in F2 and parent F0)");
    println!();

    // (d): merging nodes and T'_F.
    let merging: Vec<usize> = (0..16).filter(|&v| r.merging[v]).collect();
    println!("merging nodes: {merging:?}");
    let mut tprime: Vec<(u32, Option<u32>)> = r
        .tprime_parent
        .iter()
        .map(|(v, p)| (v.raw(), p.map(|p| p.raw())))
        .collect();
    tprime.sort_unstable();
    println!("T'_F (node -> parent): {tprime:?}");
    println!();

    // (e): LCA cases of the non-tree edges.
    let lca = SparseTableLca::new(&fig.tree);
    println!("non-tree edges and their LCA cases:");
    for &(u, v, _) in EXTRA_EDGES.iter() {
        let z = lca.lca(NodeId::new(u), NodeId::new(v));
        let (fu, fv, fz) = (
            fig.fragments.label[u as usize],
            fig.fragments.label[v as usize],
            fig.fragments.label[z.index()],
        );
        let case = if fu == fv {
            "case 1 (same fragment)"
        } else if fz == fu || fz == fv {
            "case 3 (LCA inside an endpoint's fragment)"
        } else {
            "case 2 (LCA outside both; a merging node)"
        };
        let msg_type = if fz != fu && fz != fv { "i" } else { "ii" };
        println!("  ({u:2},{v:2}): LCA = {z}, {case}, message type ({msg_type})");
    }
    println!();

    // Run the actual distributed pipeline on the instance.
    let result = mincut_repro::mincut::dist::driver::exact_mincut(
        &fig.graph,
        &mincut_repro::mincut::dist::driver::ExactConfig::default(),
    )?;
    println!(
        "distributed pipeline: min cut = {} in {} CONGEST rounds",
        result.cut.value, result.rounds
    );
    println!("C(v↓) per node (sequential reference): {:?}", r.cuts);
    Ok(())
}
