//! Chaos timeline: replay a lossy, crash-ridden min-cut run on a
//! 12×12 torus with a `congest::obs` sink attached and render what the
//! adversary did — and what the stack did about it — as a textual
//! timeline.
//!
//! ```text
//! cargo run --release --example chaos_timeline
//! ```
//!
//! Where `chaos_demo` narrates the *outcome* of a leader kill (the
//! recovered cut, the epochs, the per-stem overhead), this example
//! narrates the *mechanism*: each stem row shows the transport traffic
//! the α-synchronizer moved under the adversary (sends, drops,
//! retransmissions, duplicate and corrupt arrivals), and the event
//! timeline below pins the crash, the suspicions it triggered, the
//! recovery driver's checkpoint/census/resume markers, and the rejoin
//! handshake to exact virtual rounds and physical ticks. The same data,
//! exported with `obs::export_chrome_trace`, is what the `trace_export`
//! CI gate uploads for Perfetto.

use mincut_repro::congest::obs::EventKind;
use mincut_repro::congest::phase;
use mincut_repro::congest::sim::{CrashEvent, FaultPlan};
use mincut_repro::congest::ObsHandle;
use mincut_repro::graphs::generators;
use mincut_repro::mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut_repro::mincut::dist::{recover_mincut, RecoverConfig};
use mincut_repro::mincut::seq::tree_packing::{PackingConfig, PackingSize};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::torus2d(12, 12)?;
    println!(
        "network: torus12x12, n = {}, m = {}",
        g.node_count(),
        g.edge_count()
    );

    // A 3-tree packing keeps the session small enough that the whole
    // event history fits in the sink's ring — the point here is to
    // read a timeline end to end, not to stress the packing bound.
    let base = ExactConfig {
        packing: PackingConfig {
            size: PackingSize::Fixed(3),
            max_trees: 3,
        },
        ..Default::default()
    };

    // The link adversary: 6% drops, duplication, a delay window, and a
    // low rate of in-flight bit-flips (caught by the frame checksum).
    let link_faults = FaultPlan::with_drop(60, 0x71ACE).delayed(2).duplicated(30);

    // Probe the crash-free schedule to aim the assassin: kill node 0 —
    // the leader under the min-id election — two rounds into the first
    // MST fragment-growth level, wherever the schedule puts it.
    let clean = exact_mincut(&g, &base.clone().with_fault_plan(link_faults.clone()))?;
    let mut crash_round = 0u64;
    let mut consumed = 0u64;
    for p in clean.ledger.phases() {
        if p.name.starts_with("mstA.l0.") && crash_round == 0 {
            crash_round = consumed + 2;
        }
        consumed += p.rounds;
    }
    println!(
        "crash-free probe: λ = {}, {} rounds; assassin aims at round {crash_round}",
        clean.cut.value, consumed
    );

    // The chaos run: the link faults plus the leader kill, with a node
    // rejoin late enough that the re-run is already underway — the
    // census handshake has to take it back in.
    let plan = FaultPlan {
        crashes: vec![CrashEvent {
            node: 0,
            at_round: crash_round,
            rejoin: Some(crash_round + 40),
        }],
        ..link_faults.corrupted(10)
    };
    // A deep ring so the early events (the crash itself) survive the
    // session; whatever still overflows is reported, never silent.
    let obs = ObsHandle::with_capacity(1 << 22);
    let r = recover_mincut(
        &g,
        &RecoverConfig {
            base,
            ..Default::default()
        }
        .with_plan(plan)
        .with_obs(obs.clone()),
    )?;
    let report = obs.sink().snapshot();

    println!(
        "\nchaos run: λ = {}, epochs = {}, dead at cut time = {:?}",
        r.cut.value, r.epochs, r.dead
    );
    println!(
        "sink: {} phases, {} events retained, {} overwritten",
        report.phases.len(),
        report.events.len(),
        report.dropped
    );

    // Per-stem transport accounting, from the retained events. The
    // drop bar makes the adversary's pressure visible at a glance.
    let mut traffic: BTreeMap<&str, [u64; 5]> = BTreeMap::new();
    for e in &report.events {
        let Some(name) = report.phase_name_of(e) else {
            continue;
        };
        let row = traffic.entry(phase::stem_of(name)).or_default();
        match e.kind {
            EventKind::FrameSend => row[0] += 1,
            EventKind::FrameDrop => row[1] += 1,
            EventKind::FrameRetransmit => row[2] += 1,
            EventKind::FrameDup => row[3] += 1,
            EventKind::FrameCorrupt => row[4] += 1,
            _ => {}
        }
    }
    println!(
        "\n{:<12} {:>8} {:>7} {:>7} {:>5} {:>7}",
        "stem", "sends", "drops", "retrans", "dup", "corrupt"
    );
    let max_drops = traffic.values().map(|row| row[1]).max().unwrap_or(0).max(1);
    for (stem, [sends, drops, retrans, dups, corrupts]) in &traffic {
        let bar = "▪".repeat((drops * 30 / max_drops) as usize);
        println!("{stem:<12} {sends:>8} {drops:>7} {retrans:>7} {dups:>5} {corrupts:>7}  {bar}");
    }

    // The chaos timeline proper: the crash, the suspicions it triggers
    // (and the false ones retransmission later revokes), and the
    // recovery driver's stage markers — each pinned to the phase,
    // virtual round, and physical tick it happened at.
    println!("\nchaos timeline (tick / round / phase):");
    let mut suspicions = 0u64;
    for e in &report.events {
        let phase = report.phase_name_of(e).unwrap_or("-");
        let line = match e.kind {
            EventKind::Crash => format!("node {} fail-stops", e.a),
            EventKind::Suspect => {
                suspicions += 1;
                if suspicions > 8 {
                    continue;
                }
                format!("node {} suspects node {}", e.a, e.b)
            }
            EventKind::Clear => format!("node {} rehabilitates node {}", e.a, e.b),
            EventKind::PartitionOpen => format!("partition window {} opens", e.a),
            EventKind::PartitionHeal => format!("partition window {} heals", e.a),
            EventKind::Stage => {
                format!("stage {} = {}", report.label_of(e).unwrap_or("?"), e.round)
            }
            _ => continue,
        };
        println!("  t{:<6} r{:<5} {:<22} {}", e.tick, e.round, phase, line);
    }
    if suspicions > 8 {
        println!("  … {} further suspicions elided", suspicions - 8);
    }

    println!(
        "\nepoch overhead: {} of {} rounds, {} of {} messages spent recovering",
        r.recovery_rounds, r.rounds, r.recovery_messages, r.messages
    );
    Ok(())
}
