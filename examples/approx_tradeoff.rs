//! The (1+ε) / rounds trade-off: sweep ε on a planted-cut network and
//! compare against the (2+ε)-quality baselines — the paper's headline
//! improvement over Ghaffari–Kuhn.
//!
//! ```text
//! cargo run --release --example approx_tradeoff
//! ```

use mincut_repro::graphs::generators;
use mincut_repro::mincut::dist::approx::{approx_mincut, ApproxConfig};
use mincut_repro::mincut::dist::baselines::{gk_baseline, su_baseline, BaselineConfig};
use mincut_repro::mincut::seq::stoer_wagner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let planted = generators::community_pair(32, 6, 3, &mut rng)?;
    let g = &planted.graph;
    let opt = stoer_wagner(g)?.value;
    println!("n = {}, m = {}, λ = {opt}", g.node_count(), g.edge_count());
    println!();
    println!("| algorithm        | eps   | value | ratio | rounds |");
    println!("|------------------|-------|-------|-------|--------|");

    for eps in [0.5, 0.25, 0.125] {
        let cfg = ApproxConfig {
            eps,
            ..Default::default()
        };
        let r = approx_mincut(g, &cfg)?;
        println!(
            "| (1+ε) this paper | {eps:<5} | {:>5} | {:>5.2} | {:>6} |",
            r.cut.value,
            r.cut.value as f64 / opt as f64,
            r.rounds
        );
    }

    let su = su_baseline(g, &BaselineConfig::default())?;
    println!(
        "| Su-inspired      |   —   | {:>5} | {:>5.2} | {:>6} |",
        su.cut.value,
        su.cut.value as f64 / opt as f64,
        su.rounds
    );
    let gk = gk_baseline(g, &BaselineConfig::default())?;
    println!(
        "| GK-inspired      |   —   | {:>5} | {:>5.2} | {:>6} |",
        gk.cut.value,
        gk.cut.value as f64 / opt as f64,
        gk.rounds
    );
    Ok(())
}
