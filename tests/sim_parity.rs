//! Full-pipeline fault parity: `exact_mincut` under the fault-injecting
//! executor — message drops, duplication, bounded delay with in-window
//! reordering, all seeded and deterministic — returns **bit-identical**
//! results to the serial executor: same cut value, same side, same tree
//! counts, same arg-min node, same virtual rounds and payload traffic.
//! The α-synchronizer (`congest::sim`) is what makes dozens of
//! heterogeneous phases (elections, MST levels, fragment floods,
//! pipelined keyed-stream aggregations) survive an adversarial network
//! without a single algorithm change; this suite pins that on the whole
//! paper pipeline. The congest-level randomized suite lives in
//! `crates/congest/tests/sim_determinism.rs`.

use mincut_repro::congest::sim::FaultPlan;
use mincut_repro::congest::ExecutorKind;
use mincut_repro::graphs::generators;
use mincut_repro::mincut::dist::driver::{exact_mincut, ExactConfig};

/// The fault grid of the acceptance criteria: drop p ∈ {0, 0.05, 0.2},
/// delay window ≤ 3, fixed seeds (plus duplication on the lossiest
/// plan, so all three fault species run against the full pipeline).
fn plans() -> [FaultPlan; 4] {
    [
        FaultPlan::lossless(),
        FaultPlan::with_drop(50, 0xFA_07).delayed(1),
        FaultPlan::with_drop(200, 0xFA_11).delayed(3),
        FaultPlan::with_drop(200, 0xFA_13)
            .delayed(2)
            .duplicated(100),
    ]
}

#[test]
fn exact_mincut_under_faults_matches_serial_on_planted_graphs() {
    let planted = generators::clique_pair(8, 3).unwrap();
    let cases = [
        ("clique_pair8", planted.graph),
        ("torus5x4", generators::torus2d(5, 4).unwrap()),
    ];
    for (name, g) in &cases {
        let serial = exact_mincut(g, &ExactConfig::default()).expect("serial run succeeds");
        for plan in plans() {
            let tag = format!("{name} plan {plan:?}");
            let cfg = ExactConfig::default().with_executor(ExecutorKind::Faulty(plan));
            let faulty = exact_mincut(g, &cfg).expect("faulty run succeeds");
            assert_eq!(faulty.cut.value, serial.cut.value, "{tag}");
            assert_eq!(faulty.cut.side, serial.cut.side, "{tag}");
            assert_eq!(faulty.trees_packed, serial.trees_packed, "{tag}");
            assert_eq!(faulty.trees_to_best, serial.trees_to_best, "{tag}");
            assert_eq!(faulty.best_node, serial.best_node, "{tag}");
            assert_eq!(faulty.rounds, serial.rounds, "{tag}");
            assert_eq!(faulty.messages, serial.messages, "{tag}");
            // Phase by phase, the payload-level metrics match the serial
            // ledger exactly; only the transport-layer `sim` block may
            // (and, whenever frames moved, must) differ.
            assert_eq!(
                faulty.ledger.phases().len(),
                serial.ledger.phases().len(),
                "{tag}"
            );
            for (f, s) in faulty.ledger.phases().iter().zip(serial.ledger.phases()) {
                let mut payload = f.clone();
                payload.sim = s.sim;
                assert_eq!(&payload, s, "{tag}: phase {} diverged", s.name);
                if f.messages > 0 {
                    assert!(
                        f.sim.phys_rounds > f.rounds,
                        "{tag}: phase {} paid no synchronizer overhead",
                        f.name
                    );
                }
            }
            // The overhead is measured, not hidden.
            assert!(faulty.ledger.total_phys_rounds() > serial.rounds, "{tag}");
            assert!(faulty.ledger.sim_overhead_factor() > 1.0, "{tag}");
        }
    }
}

/// Lossy runs with the same plan are byte-identical end to end —
/// including every transport counter — and the planted cut is found.
#[test]
fn faulty_runs_are_deterministic_per_plan() {
    let planted = generators::clique_pair(8, 3).unwrap();
    let plan = FaultPlan::with_drop(150, 77).delayed(2).duplicated(50);
    let cfg = ExactConfig::default().with_executor(ExecutorKind::Faulty(plan));
    let a = exact_mincut(&planted.graph, &cfg).unwrap();
    let b = exact_mincut(&planted.graph, &cfg).unwrap();
    assert_eq!(a.cut.value, planted.planted_value);
    assert_eq!(a.cut.value, b.cut.value);
    assert_eq!(a.cut.side, b.cut.side);
    assert_eq!(
        a.ledger.phases(),
        b.ledger.phases(),
        "ledger must be byte-identical"
    );
    assert_eq!(a.ledger.total_dropped(), b.ledger.total_dropped());
    assert!(a.ledger.total_dropped() > 0, "the adversary was not idle");
}

/// A starved channel reports *where* it starved: the typed
/// `RetransmitExhausted` names both endpoints of the directed edge
/// (`node` → `peer`) and the virtual round of the stuck payload, and the
/// diagnosis is deterministic.
#[test]
fn retransmit_exhaustion_names_the_starved_edge() {
    use mincut_repro::congest::CongestError;
    use mincut_repro::mincut::MinCutError;

    let g = generators::torus2d(4, 4).unwrap();
    // Total frame loss: the first scheduled payload retransmission
    // budget to run out aborts the phase.
    let plan = FaultPlan::with_drop(1000, 0xDEAD);
    let run = || {
        let cfg = ExactConfig::default().with_executor(ExecutorKind::Faulty(plan.clone()));
        exact_mincut(&g, &cfg).expect_err("total loss cannot complete")
    };
    let err = run();
    let MinCutError::Congest(CongestError::RetransmitExhausted {
        phase,
        node,
        peer,
        round,
        attempts,
        ..
    }) = &err
    else {
        panic!("expected RetransmitExhausted, got {err:?}");
    };
    assert_eq!(phase, "leader_bfs", "the very first phase starves");
    assert_ne!(node, peer, "a directed edge has distinct endpoints");
    assert!(
        g.neighbors(*node).iter().any(|a| a.neighbor == *peer),
        "the reported pair is an actual edge of the graph"
    );
    assert_eq!(*attempts, 64, "the plan's budget is echoed back");
    assert_eq!(*round, 0, "the stuck payload was sent at boot");
    assert_eq!(err, run(), "the starvation diagnosis is deterministic");
}
