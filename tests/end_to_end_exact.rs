//! End-to-end: the exact distributed algorithm against the Stoer–Wagner
//! oracle across graph families and seeds.

use mincut_repro::graphs::{cut::cut_of_side, generators};
use mincut_repro::mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut_repro::mincut::seq::stoer_wagner;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_exact(g: &mincut_repro::graphs::WeightedGraph, label: &str) {
    let want = stoer_wagner(g).expect("oracle").value;
    let got = exact_mincut(g, &ExactConfig::default()).expect("distributed run");
    assert_eq!(
        cut_of_side(g, &got.cut.side),
        got.cut.value,
        "{label}: reported value must match the side"
    );
    assert!(got.cut.is_proper(), "{label}: cut must be proper");
    assert_eq!(got.cut.value, want, "{label}: distributed != oracle");
}

#[test]
fn structured_families() {
    assert_exact(&generators::cycle(24).unwrap(), "cycle24");
    assert_exact(&generators::grid2d(6, 7).unwrap(), "grid6x7");
    assert_exact(&generators::torus2d(5, 5).unwrap(), "torus5x5");
    assert_exact(&generators::hypercube(5).unwrap(), "hypercube5");
    assert_exact(&generators::complete(10, 2).unwrap(), "K10w2");
    assert_exact(&generators::caterpillar(8, 2).unwrap(), "caterpillar");
}

#[test]
fn planted_families() {
    for (h, lambda) in [(8, 1), (8, 3), (10, 5)] {
        let p = generators::clique_pair(h, lambda).unwrap();
        assert_exact(&p.graph, &format!("clique_pair({h},{lambda})"));
    }
    let b = generators::barbell(6, 5).unwrap();
    assert_exact(&b.graph, "barbell");
    let l = generators::lollipop(6, 6).unwrap();
    assert_exact(&l.graph, "lollipop");
}

#[test]
fn weighted_random_graphs() {
    let mut rng = StdRng::seed_from_u64(2014);
    for (i, n) in [16usize, 30, 48].into_iter().enumerate() {
        let base = generators::erdos_renyi_connected(n, 0.2, &mut rng).unwrap();
        let g = generators::randomize_weights(&base, 1, 8, &mut rng).unwrap();
        assert_exact(&g, &format!("gnp#{i}"));
    }
}

#[test]
fn geometric_network() {
    let mut rng = StdRng::seed_from_u64(99);
    let g = generators::random_geometric(70, 0.25, &mut rng).unwrap();
    assert_exact(&g, "geometric");
}

#[test]
fn das_sarma_family() {
    let g = generators::das_sarma_style(3, 8).unwrap();
    assert_exact(&g, "das_sarma(3,8)");
}

#[test]
fn community_pairs_across_lambda() {
    let mut rng = StdRng::seed_from_u64(5);
    for lambda in [1usize, 2, 4] {
        let p = generators::community_pair(16, 6, lambda, &mut rng).unwrap();
        // Certify the instance first (community pairs are planted w.h.p.).
        let oracle = stoer_wagner(&p.graph).unwrap().value;
        assert_eq!(oracle, lambda as u64, "instance certification");
        assert_exact(&p.graph, &format!("community λ={lambda}"));
    }
}
