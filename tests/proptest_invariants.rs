//! Property-based tests of the core invariants.

use mincut_repro::graphs::{cut::cut_of_side, generators, NodeId, WeightedGraph};
use mincut_repro::mincut::seq::{self, one_respecting_cuts, skeleton, splitmix64, stoer_wagner};
use mincut_repro::trees::spanning::{random_spanning_edges, to_rooted};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A reproducible random connected weighted graph from a strategy seed.
fn graph_from(seed: u64, n: usize, p: f64, wmax: u64) -> WeightedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = generators::erdos_renyi_connected(n, p, &mut rng).expect("valid parameters");
    generators::randomize_weights(&base, 1, wmax, &mut rng).expect("valid weights")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Karger's identity: C(v↓) computed via δ↓ − 2ρ↓ equals direct
    /// evaluation of the side bitmap, for every node and random tree.
    #[test]
    fn karger_identity_holds(seed in 0u64..5000, n in 6usize..40) {
        let g = graph_from(seed, n, 0.25, 6);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let edges = random_spanning_edges(&g, &mut rng);
        let tree = to_rooted(&g, &edges, NodeId::new(0)).unwrap();
        let cuts = one_respecting_cuts(&g, &tree);
        for v in g.nodes() {
            let side = seq::karger_dp::subtree_side(&tree, v);
            prop_assert_eq!(cut_of_side(&g, &side), cuts[v.index()]);
        }
    }

    /// The packing-based minimum cut always returns a real, proper cut
    /// whose value is an upper bound on the true minimum.
    #[test]
    fn packing_cut_is_sound(seed in 0u64..5000, n in 6usize..32) {
        let g = graph_from(seed, n, 0.3, 4);
        let r = seq::packing_mincut(&g, &Default::default()).unwrap();
        prop_assert!(r.cut.is_proper());
        prop_assert_eq!(cut_of_side(&g, &r.cut.side), r.cut.value);
        let opt = stoer_wagner(&g).unwrap().value;
        prop_assert!(r.cut.value >= opt);
    }

    /// Stoer–Wagner and exhaustive search agree on small graphs.
    #[test]
    fn stoer_wagner_matches_brute(seed in 0u64..5000, n in 4usize..12) {
        let g = graph_from(seed, n, 0.5, 5);
        let sw = stoer_wagner(&g).unwrap();
        let bf = seq::mincut_brute(&g).unwrap();
        prop_assert_eq!(sw.value, bf.value);
    }

    /// Skeleton sampling is deterministic in the seed and never increases
    /// any edge weight beyond the original.
    #[test]
    fn skeleton_determinism_and_bounds(seed in 0u64..5000, n in 5usize..24) {
        let g = graph_from(seed, n, 0.4, 10);
        let s1 = skeleton(&g, 0.5, seed);
        let s2 = skeleton(&g, 0.5, seed);
        prop_assert_eq!(&s1, &s2);
        for (_, u, v, w) in s1.edge_tuples() {
            let orig = g.edge_between(u, v).map(|e| g.weight(e)).unwrap_or(0);
            prop_assert!(w <= orig);
        }
    }

    /// The Matula estimator brackets the true minimum cut.
    #[test]
    fn matula_brackets_lambda(seed in 0u64..5000, n in 6usize..28) {
        let g = graph_from(seed, n, 0.35, 4);
        let lambda = stoer_wagner(&g).unwrap().value;
        let est = seq::matula_estimate(&g, 0.5).unwrap();
        prop_assert!(est >= lambda);
        prop_assert!(est as f64 <= 2.5 * lambda as f64 + 1e-9);
    }

    /// splitmix64 is injective-looking on small ranges (regression guard
    /// for the shared-coin machinery).
    #[test]
    fn splitmix_no_collisions_on_range(base in 0u64..1_000_000) {
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            prop_assert!(seen.insert(splitmix64(base + i)));
        }
    }

    /// Graph builder canonicalisation: edge order never matters.
    #[test]
    fn builder_is_order_insensitive(seed in 0u64..5000, n in 4usize..20) {
        let g = graph_from(seed, n, 0.4, 7);
        let mut edges: Vec<(u32, u32, u64)> = g
            .edge_tuples()
            .map(|(_, u, v, w)| (u.raw(), v.raw(), w))
            .collect();
        edges.reverse();
        let g2 = WeightedGraph::from_edges(n, edges).unwrap();
        prop_assert_eq!(g, g2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The full distributed pipeline equals the sequential oracle — the
    /// headline invariant, sampled at property-test scale.
    #[test]
    fn distributed_equals_oracle(seed in 0u64..300) {
        let g = graph_from(seed, 18, 0.3, 3);
        let want = stoer_wagner(&g).unwrap().value;
        let got = mincut_repro::mincut::dist::driver::exact_mincut(
            &g,
            &Default::default(),
        ).unwrap();
        prop_assert!(got.cut.value >= want);
        prop_assert_eq!(cut_of_side(&g, &got.cut.side), got.cut.value);
        // Exactness is a w.h.p. statement for heuristic packing sizes; on
        // n = 18 with λ ≤ 8 it holds for every seed we have ever observed —
        // treat a miss as a failure so regressions surface.
        prop_assert_eq!(got.cut.value, want);
    }
}
