//! Model compliance: every phase respects the CONGEST bandwidth in strict
//! mode, and round totals scale like Õ(√n + D), not like n.

use mincut_repro::congest::NetworkConfig;
use mincut_repro::graphs::{generators, traversal};
use mincut_repro::mincut::dist::driver::{exact_mincut, ExactConfig};

fn run(
    g: &mincut_repro::graphs::WeightedGraph,
) -> mincut_repro::mincut::dist::driver::DistMinCutResult {
    exact_mincut(g, &ExactConfig::default()).expect("strict-mode run succeeds")
}

#[test]
fn strict_mode_and_message_sizes() {
    // Strict mode is the default: any over-budget message would have turned
    // into an error. Additionally check the recorded maxima.
    let g = generators::torus2d(6, 6).unwrap();
    let r = run(&g);
    let budget = NetworkConfig::default().bandwidth_bits(g.node_count());
    assert!(r.ledger.max_message_bits() <= budget);
    assert_eq!(r.ledger.total_violations(), 0);
}

#[test]
fn rounds_scale_like_sqrt_n_plus_d() {
    // Torus: D = Θ(√n). Quadrupling n doubles √n + D; rounds must grow by
    // far less than the 4× a Θ(n) algorithm would show.
    let small = run(&generators::torus2d(6, 6).unwrap()); // n = 36
    let large = run(&generators::torus2d(12, 12).unwrap()); // n = 144
    let ratio = large.rounds as f64 / small.rounds as f64;
    assert!(
        ratio < 3.2,
        "rounds {} → {} (×{ratio:.2}) for n ×4",
        small.rounds,
        large.rounds
    );
}

#[test]
fn per_phase_ledger_is_complete() {
    let g = generators::grid2d(5, 5).unwrap();
    let r = run(&g);
    let phases = r.ledger.phases();
    assert!(!phases.is_empty());
    // Every recorded phase contributed rounds and the names cover the
    // pipeline stages.
    let names: String = phases
        .iter()
        .map(|p| p.name.as_str())
        .collect::<Vec<_>>()
        .join(",");
    for needle in [
        "leader_bfs",
        "mstA",
        "mstB",
        "orient",
        "s2a",
        "s2b",
        "s2c",
        "s3",
        "s4",
        "s5",
    ] {
        assert!(names.contains(needle), "missing phase {needle}");
    }
    assert_eq!(
        r.rounds,
        phases.iter().map(|p| p.rounds).sum::<u64>(),
        "total = sum of phases"
    );
}

#[test]
fn low_diameter_family_is_fast() {
    // Das-Sarma-style instance: D = O(log n) but Θ(n) path nodes — rounds
    // must track √n, not n.
    let g = generators::das_sarma_style(4, 16).unwrap();
    let n = g.node_count() as f64;
    let d = traversal::two_sweep_diameter(&g) as f64;
    let r = run(&g);
    let unit = n.sqrt() + d;
    // Total rounds = (trees packed) × per-tree cost; the paper's bound is
    // Õ(√n + D) per tree with the poly(λ) factor in the tree count.
    let per_tree = r.rounds as f64 / r.trees_packed.max(1) as f64 / unit;
    // Generous polylog envelope; E5 reports the precise trend.
    assert!(
        per_tree < 20.0 * n.log2(),
        "per-tree normalized rounds {per_tree:.1} (total {} over {} trees, √n + D = {unit:.1})",
        r.rounds,
        r.trees_packed
    );
}
