//! Full-pipeline executor parity: `exact_mincut` under the parallel
//! round executor is bit-identical to the serial run — same cut, same
//! side, same tree counts, same total rounds/messages, and the same
//! per-phase metrics, entry by entry. The congest-level randomized
//! parity suite lives in `crates/congest/tests/executor_parity.rs`; this
//! test pins the property on the *whole* paper pipeline, where dozens of
//! heterogeneous phases (MST levels, fragment floods, keyed-stream
//! aggregations) run back to back over shared per-node memory.

use mincut_repro::congest::ExecutorKind;
use mincut_repro::graphs::generators;
use mincut_repro::mincut::dist::driver::{exact_mincut, ExactConfig};

#[test]
fn exact_mincut_parallel_matches_serial_on_planted_graphs() {
    let planted = generators::clique_pair(8, 3).unwrap();
    let cases = [
        ("clique_pair8", planted.graph),
        ("torus5x4", generators::torus2d(5, 4).unwrap()),
    ];
    for (name, g) in &cases {
        let serial = exact_mincut(g, &ExactConfig::default()).expect("serial run succeeds");
        for threads in [2usize, 4] {
            let cfg = ExactConfig::default().with_executor(ExecutorKind::Parallel { threads });
            let par = exact_mincut(g, &cfg).expect("parallel run succeeds");
            assert_eq!(par.cut.value, serial.cut.value, "{name} t={threads}");
            assert_eq!(par.cut.side, serial.cut.side, "{name} t={threads}");
            assert_eq!(par.trees_packed, serial.trees_packed, "{name} t={threads}");
            assert_eq!(
                par.trees_to_best, serial.trees_to_best,
                "{name} t={threads}"
            );
            assert_eq!(par.best_node, serial.best_node, "{name} t={threads}");
            assert_eq!(par.rounds, serial.rounds, "{name} t={threads}");
            assert_eq!(par.messages, serial.messages, "{name} t={threads}");
            // Phase-by-phase: names, rounds, messages, bits, and both
            // load maxima all agree.
            assert_eq!(
                par.ledger.phases(),
                serial.ledger.phases(),
                "{name} t={threads}: per-phase metrics diverged"
            );
        }
    }
}

#[test]
fn planted_cut_value_is_found_by_both_executors() {
    let planted = generators::clique_pair(8, 3).unwrap();
    let want = planted.planted_value;
    let serial = exact_mincut(&planted.graph, &ExactConfig::default()).unwrap();
    assert_eq!(serial.cut.value, want);
    let cfg = ExactConfig::default().with_executor(ExecutorKind::parallel());
    let par = exact_mincut(&planted.graph, &cfg).unwrap();
    assert_eq!(par.cut.value, want);
}
