//! Full-pipeline phase-A mode parity, crossed with the executor grid:
//! `exact_mincut` with the optimized `mstA` (frozen-level skip, fused
//! cand/dec convergecast, deterministic mating) returns **bit-identical
//! cuts and trees** to the legacy phase A under the serial, parallel,
//! and fault-injecting executors alike — while moving at most half the
//! `mstA` messages. The randomized per-family parity suite lives in
//! `crates/core/tests/msta_parity.rs`; this test pins the property on
//! planted-cut instances end to end, including the α-synchronizer
//! (whose payload-bit-parity the optimized protocol must preserve just
//! like the legacy one does).

use mincut_repro::congest::sim::FaultPlan;
use mincut_repro::congest::ExecutorKind;
use mincut_repro::graphs::generators;
use mincut_repro::mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut_repro::mincut::dist::mst::{MstAMode, MstConfig};

fn cfg(mode: MstAMode, executor: ExecutorKind) -> ExactConfig {
    ExactConfig {
        mst: MstConfig {
            mode,
            ..Default::default()
        },
        ..Default::default()
    }
    .with_executor(executor)
}

#[test]
fn optimized_phase_a_matches_legacy_across_executors() {
    let planted = generators::clique_pair(8, 3).unwrap();
    let cases = [
        ("clique_pair8", planted.graph),
        ("torus6x5", generators::torus2d(6, 5).unwrap()),
    ];
    let executors = [
        ("serial", ExecutorKind::Serial),
        ("parallel", ExecutorKind::Parallel { threads: 4 }),
        (
            "faulty",
            ExecutorKind::Faulty(
                FaultPlan::with_drop(200, 0xA1_57)
                    .delayed(2)
                    .duplicated(100),
            ),
        ),
    ];
    for (name, g) in &cases {
        for (exec_name, executor) in &executors {
            let tag = format!("{name} under {exec_name}");
            let legacy = exact_mincut(g, &cfg(MstAMode::Legacy, executor.clone()))
                .expect("legacy run succeeds");
            let opt = exact_mincut(g, &cfg(MstAMode::Optimized, executor.clone()))
                .expect("optimized run succeeds");
            assert_eq!(opt.cut.value, legacy.cut.value, "{tag}: lambda");
            assert_eq!(opt.cut.side, legacy.cut.side, "{tag}: side");
            assert_eq!(opt.trees_packed, legacy.trees_packed, "{tag}: trees");
            assert_eq!(
                opt.trees_to_best, legacy.trees_to_best,
                "{tag}: trees_to_best"
            );
            assert_eq!(opt.best_node, legacy.best_node, "{tag}: best_node");
            assert_eq!(
                opt.tree_edges, legacy.tree_edges,
                "{tag}: MST edge sets must be identical"
            );
            // The win, not just the parity: optimized phase A moves at
            // most ⅔ of the legacy mstA traffic on every instance and
            // executor. (The ≥2× bar lives in `message_gate`, on the
            // canonical torus24x24 and 70602-node instances — tiny
            // graphs amortize fewer levels, so the floor here is
            // looser.)
            let (lm, om) = (
                legacy.ledger.messages_matching("mstA"),
                opt.ledger.messages_matching("mstA"),
            );
            assert!(
                om * 3 <= lm * 2,
                "{tag}: optimized mstA moved {om} msgs > 2/3 of legacy's {lm}"
            );
        }
    }
}

#[test]
fn executor_grid_is_mode_internally_consistent() {
    // Within one mode, the three executors agree with each other on
    // rounds/messages too (payload bit-parity) — so the cross-mode
    // assertions above compare well-defined quantities.
    let g = generators::torus2d(6, 5).unwrap();
    for mode in [MstAMode::Legacy, MstAMode::Optimized] {
        let serial = exact_mincut(&g, &cfg(mode, ExecutorKind::Serial)).unwrap();
        for executor in [
            ExecutorKind::Parallel { threads: 2 },
            ExecutorKind::Faulty(FaultPlan::with_drop(50, 0xA1_59).delayed(1)),
        ] {
            let other = exact_mincut(&g, &cfg(mode, executor)).unwrap();
            assert_eq!(other.rounds, serial.rounds, "{mode:?}");
            assert_eq!(other.messages, serial.messages, "{mode:?}");
            assert_eq!(other.cut.value, serial.cut.value, "{mode:?}");
            assert_eq!(other.tree_edges, serial.tree_edges, "{mode:?}");
        }
    }
}
