//! End-to-end: the (1+ε) approximation and the baselines are valid cuts
//! within their advertised quality envelopes.

use mincut_repro::graphs::{cut::cut_of_side, generators};
use mincut_repro::mincut::dist::approx::{approx_mincut, ApproxConfig};
use mincut_repro::mincut::dist::baselines::{gk_baseline, su_baseline, BaselineConfig};
use mincut_repro::mincut::seq::stoer_wagner;
use mincut_repro::mincut::verify::check_cut;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn approx_sound_and_near_optimal() {
    let mut rng = StdRng::seed_from_u64(31);
    for (n, p, wmax) in [(20usize, 0.3, 3u64), (36, 0.2, 5)] {
        let base = generators::erdos_renyi_connected(n, p, &mut rng).unwrap();
        let g = generators::randomize_weights(&base, 1, wmax, &mut rng).unwrap();
        let opt = stoer_wagner(&g).unwrap().value;
        for eps in [0.5, 0.25] {
            let cfg = ApproxConfig {
                eps,
                ..Default::default()
            };
            let r = approx_mincut(&g, &cfg).unwrap();
            check_cut(&g, &r.cut).unwrap();
            assert!(r.cut.value >= opt, "below optimum");
            // (1+ε) holds w.h.p.; with the p=1 ladder rung these sizes are
            // effectively exact — allow the formal slack anyway.
            assert!(
                r.cut.value as f64 <= (1.0 + eps) * opt as f64 + 1e-9,
                "eps={eps}: {} > (1+ε)·{opt}",
                r.cut.value
            );
        }
    }
}

#[test]
fn approx_reports_its_ladder() {
    let p = generators::clique_pair(8, 2).unwrap();
    let r = approx_mincut(&p.graph, &ApproxConfig::default()).unwrap();
    assert!(!r.guesses.is_empty());
    assert!(r.guesses.iter().all(|g| g.p > 0.0 && g.p <= 1.0));
    // λ̂ halves down the ladder.
    for w in r.guesses.windows(2) {
        assert!(w[1].lambda_hat <= w[0].lambda_hat);
    }
}

#[test]
fn baselines_are_valid_cuts() {
    let mut rng = StdRng::seed_from_u64(8);
    let base = generators::erdos_renyi_connected(26, 0.25, &mut rng).unwrap();
    let g = generators::randomize_weights(&base, 1, 3, &mut rng).unwrap();
    let opt = stoer_wagner(&g).unwrap().value;
    let su = su_baseline(&g, &BaselineConfig::default()).unwrap();
    check_cut(&g, &su.cut).unwrap();
    assert!(su.cut.value >= opt);
    let gk = gk_baseline(&g, &BaselineConfig::default()).unwrap();
    check_cut(&g, &gk.cut).unwrap();
    assert!(gk.cut.value >= opt);
    // The GK-style baseline is the (2+ε)-quality competitor: generous
    // envelope to keep the test seed-robust.
    assert!(
        gk.cut.value <= 4 * opt,
        "GK value {} vs opt {opt}",
        gk.cut.value
    );
}

#[test]
fn approx_on_torus_is_proper() {
    let g = generators::torus2d(5, 6).unwrap();
    let r = approx_mincut(&g, &ApproxConfig::default()).unwrap();
    assert!(r.cut.is_proper());
    assert_eq!(cut_of_side(&g, &r.cut.side), r.cut.value);
    assert_eq!(r.cut.value, 4); // exact on this size (p = 1 rung)
}
