//! Failure injection and bandwidth sweeps: the enforcement actually bites,
//! lax mode degrades gracefully, and the pipeline is bandwidth-robust at
//! the model's intended budget.

use mincut_repro::congest::{CongestError, NetworkConfig};
use mincut_repro::graphs::generators;
use mincut_repro::mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut_repro::mincut::MinCutError;

fn config_with_factor(factor: usize, strict: bool) -> ExactConfig {
    ExactConfig {
        network: NetworkConfig {
            bandwidth_factor: factor,
            strict,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn tiny_budget_fails_fast_in_strict_mode() {
    // One bit per word: even a single id does not fit. The run must die
    // with a BandwidthExceeded error, not a wrong answer.
    let g = generators::torus2d(5, 5).unwrap();
    let err = exact_mincut(&g, &config_with_factor(1, true)).unwrap_err();
    match err {
        MinCutError::Congest(CongestError::BandwidthExceeded { bits, budget, .. }) => {
            assert!(bits > budget);
        }
        other => panic!("expected BandwidthExceeded, got {other}"),
    }
}

#[test]
fn lax_mode_completes_and_counts_violations() {
    // Same tiny budget, lax: the answer is still correct and violations
    // are recorded instead of enforced.
    let g = generators::torus2d(5, 5).unwrap();
    let r = exact_mincut(&g, &config_with_factor(1, false)).unwrap();
    assert_eq!(r.cut.value, 4);
    assert!(
        r.ledger.total_violations() > 0,
        "a 1-bit-word budget must be violated somewhere"
    );
}

#[test]
fn budget_sweep_at_and_above_the_model_constant() {
    // The default β = 8 runs strictly; larger factors must too, and the
    // answers agree bit-for-bit (determinism).
    let g = generators::clique_pair(8, 3).unwrap().graph;
    let mut values = Vec::new();
    for factor in [8usize, 12, 32] {
        let r = exact_mincut(&g, &config_with_factor(factor, true)).unwrap();
        values.push((r.cut.value, r.rounds, r.cut.side.clone()));
    }
    assert!(values.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(values[0].0, 3);
}

#[test]
fn round_cap_is_respected() {
    // An absurdly small round cap turns into MaxRoundsExceeded, proving the
    // livelock guard is wired through the whole pipeline.
    let g = generators::grid2d(6, 6).unwrap();
    let cfg = ExactConfig {
        network: NetworkConfig {
            max_rounds: 3,
            ..Default::default()
        },
        ..Default::default()
    };
    let err = exact_mincut(&g, &cfg).unwrap_err();
    assert!(matches!(
        err,
        MinCutError::Congest(CongestError::MaxRoundsExceeded { cap: 3, .. })
    ));
}

#[test]
fn deterministic_across_runs() {
    // Everything is seeded: two identical runs produce identical ledgers.
    let g = generators::das_sarma_style(3, 8).unwrap();
    let a = exact_mincut(&g, &ExactConfig::default()).unwrap();
    let b = exact_mincut(&g, &ExactConfig::default()).unwrap();
    assert_eq!(a.cut.value, b.cut.value);
    assert_eq!(a.cut.side, b.cut.side);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.messages, b.messages);
}
