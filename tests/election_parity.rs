//! Downstream election parity: swapping the staged election for the
//! legacy flood must not change *anything* the pipeline computes — cut
//! value, cut side, tree counts, argmin node — because the two protocols
//! hand the driver bit-identical BFS trees. Only the `leader_bfs` phase's
//! message bill changes, and it must change by a lot.

use mincut_repro::congest::primitives::leader_bfs::Election;
use mincut_repro::congest::ExecutorKind;
use mincut_repro::graphs::generators;
use mincut_repro::mincut::dist::driver::{exact_mincut, DistMinCutResult, ExactConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(g: &mincut_repro::graphs::WeightedGraph, election: Election) -> DistMinCutResult {
    let cfg = ExactConfig {
        election,
        ..Default::default()
    };
    exact_mincut(g, &cfg).expect("strict-mode run succeeds")
}

#[test]
fn staged_and_legacy_elections_agree_end_to_end() {
    let mut rng = StdRng::seed_from_u64(23);
    let mut cases = vec![
        generators::cycle(12).unwrap(),
        generators::torus2d(5, 6).unwrap(),
        generators::clique_pair(6, 2).unwrap().graph,
        generators::das_sarma_style(2, 8).unwrap(),
    ];
    let base = generators::erdos_renyi_connected(24, 0.2, &mut rng).unwrap();
    cases.push(generators::randomize_weights(&base, 1, 5, &mut rng).unwrap());
    for g in &cases {
        let staged = run(g, Election::Staged);
        let legacy = run(g, Election::Legacy);
        assert_eq!(staged.cut.value, legacy.cut.value);
        assert_eq!(staged.cut.side, legacy.cut.side);
        assert_eq!(staged.trees_packed, legacy.trees_packed);
        assert_eq!(staged.trees_to_best, legacy.trees_to_best);
        assert_eq!(staged.best_node, legacy.best_node);
        // Same phases ran; everything after the election is message-
        // identical too (the BFS trees are bit-identical), so the total
        // message gap is exactly the election's gap.
        assert_eq!(staged.ledger.phases().len(), legacy.ledger.phases().len());
        let staged_rest = staged.messages - staged.ledger.messages_matching("leader_bfs");
        let legacy_rest = legacy.messages - legacy.ledger.messages_matching("leader_bfs");
        assert_eq!(staged_rest, legacy_rest, "non-election phases must match");
    }
}

/// The headline acceptance number, end to end: on the 24×24 torus the
/// pipeline's `leader_bfs` phase moves ≥ 5× fewer messages under the
/// staged election, with the identical minimum cut, under the serial
/// *and* the parallel executor.
#[test]
fn torus24_leader_messages_drop_five_fold_under_both_executors() {
    let g = generators::torus2d(24, 24).unwrap();
    for kind in [ExecutorKind::Serial, ExecutorKind::Parallel { threads: 4 }] {
        let mk = |election| {
            let cfg = ExactConfig {
                election,
                ..Default::default()
            }
            .with_executor(kind.clone());
            exact_mincut(&g, &cfg).expect("strict-mode run succeeds")
        };
        let staged = mk(Election::Staged);
        let legacy = mk(Election::Legacy);
        assert_eq!(staged.cut.value, legacy.cut.value, "{kind:?}");
        assert_eq!(staged.cut.side, legacy.cut.side, "{kind:?}");
        let s = staged.ledger.messages_matching("leader_bfs");
        let l = legacy.ledger.messages_matching("leader_bfs");
        assert!(
            s * 5 <= l,
            "{kind:?}: staged leader_bfs {s} vs legacy {l}: less than 5×"
        );
    }
}
