//! The large-`n` regime: the pipeline above the old `n ≤ 65535` cap.
//!
//! Until the stream keys were widened to `u64`, the case-2 attachment-pair
//! aggregation packed `lo·n + hi` into a `u32` and `run_pipeline`
//! hard-errored for `n > 65535`. This test runs the full exact pipeline on
//! a sparse ~70k-node graph with a certified minimum cut, in **strict**
//! CONGEST mode with the default `8·⌈log₂ n⌉`-bit budget, and checks that
//! the case-2 pair aggregation (`s4a`) really carried keyed traffic — the
//! code path the widening exists for.

use mincut_repro::graphs::WeightedGraph;
use mincut_repro::mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut_repro::mincut::seq::tree_packing::{PackingConfig, PackingSize};

/// A 3-dimensional torus `Z_a × Z_b × Z_c` (unit weights, degree 6) plus
/// `chords` long-range weight-7 chords among high-id nodes.
///
/// The bare torus is vertex-transitive, so its edge connectivity equals
/// its degree: λ = 6 exactly. Chords only *add* edges (no cut value can
/// decrease) and their weight exceeds 6, so every singleton of a
/// non-chord node still costs 6 — the minimum cut stays exactly 6 by
/// construction. The chords exist to scatter the fragment tree: they
/// force case-2 edges (LCA in a third fragment), whose contributions
/// travel through the pair-keyed grouped sum this test is about.
fn torus3d_with_chords(a: usize, b: usize, c: usize, chords: usize) -> WeightedGraph {
    let n = a * b * c;
    let id = |x: usize, y: usize, z: usize| -> u32 { ((x * b + y) * c + z) as u32 };
    let mut edges = Vec::with_capacity(3 * n + chords);
    for x in 0..a {
        for y in 0..b {
            for z in 0..c {
                edges.push((id(x, y, z), id((x + 1) % a, y, z), 1));
                edges.push((id(x, y, z), id(x, (y + 1) % b, z), 1));
                edges.push((id(x, y, z), id(x, y, (z + 1) % c), 1));
            }
        }
    }
    // Deterministic xorshift chords restricted to the high-id half, so
    // attachment pairs land on large ids (large packed keys).
    let mut s = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for _ in 0..chords {
        let u = (n / 2 + (next() as usize) % (n / 2)) as u32;
        let v = (n / 2 + (next() as usize) % (n / 2)) as u32;
        if u != v {
            edges.push((u.min(v), u.max(v), 7));
        }
    }
    WeightedGraph::from_edges(n, edges).expect("valid torus construction")
}

#[test]
fn exact_mincut_above_the_old_u16_cap() {
    let g = torus3d_with_chords(42, 41, 41, 300);
    let n = g.node_count();
    assert!(n > 65535 + 4000, "n = {n} must be ≥ 70000");

    // One packed tree suffices: the minimum cut here is a singleton, and
    // the pipeline always considers the minimum-degree singleton seed.
    let cfg = ExactConfig {
        packing: PackingConfig {
            size: PackingSize::Fixed(1),
            max_trees: 1,
        },
        ..Default::default()
    };
    // Defaults are strict mode with β = 8: every message is hard-checked
    // against the 8·⌈log₂ n⌉-bit budget, so success *proves* compliance.
    assert!(cfg.network.strict);
    assert_eq!(cfg.network.bandwidth_factor, 8);

    let res = exact_mincut(&g, &cfg).expect("pipeline must accept n > 65535");

    // The certified minimum cut of the construction.
    assert_eq!(res.cut.value, 6);
    assert!(res.cut.is_proper());

    // Strict mode already errors on violations; assert the budget
    // arithmetic explicitly anyway: ⌈log₂ 70602⌉ = 17.
    assert!(res.ledger.max_message_bits() <= 8 * 17);
    assert_eq!(res.ledger.total_violations(), 0);

    // The case-2 pair aggregation really ran: `s4a` moved more than the
    // n − 1 end-of-stream markers, i.e. actual `lo·n + hi` keyed items
    // (with n > 2¹⁶, exactly the keys a u32 packing could not carry).
    let s4a = res
        .ledger
        .phases()
        .iter()
        .find(|p| p.name == "s4a")
        .expect("pair aggregation phase ran");
    assert!(
        s4a.messages > (n as u64) - 1,
        "s4a moved only end markers ({} messages for n = {n})",
        s4a.messages
    );
}
