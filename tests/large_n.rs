//! The large-`n` regime: the pipeline above the old `n ≤ 65535` cap.
//!
//! Until the stream keys were widened to `u64`, the case-2 attachment-pair
//! aggregation packed `lo·n + hi` into a `u32` and `run_pipeline`
//! hard-errored for `n > 65535`. This test runs the full exact pipeline on
//! a sparse ~70k-node graph with a certified minimum cut, in **strict**
//! CONGEST mode with the default `8·⌈log₂ n⌉`-bit budget, and checks that
//! the case-2 pair aggregation (`s4a`) really carried keyed traffic — the
//! code path the widening exists for.

use mincut_repro::congest::ExecutorKind;
use mincut_repro::graphs::generators::torus3d_with_chords;
use mincut_repro::mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut_repro::mincut::seq::tree_packing::{PackingConfig, PackingSize};

#[test]
fn exact_mincut_above_the_old_u16_cap() {
    // λ = 6 by vertex-transitivity; the chords scatter the fragment
    // tree and force case-2 edges (LCA in a third fragment), whose
    // contributions travel through the pair-keyed grouped sum this test
    // is about. The same instance is benchmarked per executor by
    // `bench_smoke --large` (one shared generator, so the guarded and
    // the measured workloads cannot drift apart).
    let g = torus3d_with_chords(42, 41, 41, 300).expect("valid torus construction");
    let n = g.node_count();
    assert!(n > 65535 + 4000, "n = {n} must be ≥ 70000");

    // One packed tree suffices: the minimum cut here is a singleton, and
    // the pipeline always considers the minimum-degree singleton seed.
    // Run on the parallel executor (4 workers): this is the scale the
    // executor exists for, and the parity suites guarantee the outputs
    // and metrics asserted below are identical to a serial run.
    let cfg = ExactConfig {
        packing: PackingConfig {
            size: PackingSize::Fixed(1),
            max_trees: 1,
        },
        ..Default::default()
    }
    .with_executor(ExecutorKind::Parallel { threads: 4 });
    // Defaults are strict mode with β = 8: every message is hard-checked
    // against the 8·⌈log₂ n⌉-bit budget, so success *proves* compliance.
    assert!(cfg.network.strict);
    assert_eq!(cfg.network.bandwidth_factor, 8);

    let res = exact_mincut(&g, &cfg).expect("pipeline must accept n > 65535");

    // The certified minimum cut of the construction.
    assert_eq!(res.cut.value, 6);
    assert!(res.cut.is_proper());

    // Strict mode already errors on violations; assert the budget
    // arithmetic explicitly anyway: ⌈log₂ 70602⌉ = 17.
    assert!(res.ledger.max_message_bits() <= 8 * 17);
    assert_eq!(res.ledger.total_violations(), 0);

    // The case-2 pair aggregation really ran: `s4a` moved more than the
    // n − 1 end-of-stream markers, i.e. actual `lo·n + hi` keyed items
    // (with n > 2¹⁶, exactly the keys a u32 packing could not carry).
    let s4a = res
        .ledger
        .phases()
        .iter()
        .find(|p| p.name == "s4a")
        .expect("pair aggregation phase ran");
    assert!(
        s4a.messages > (n as u64) - 1,
        "s4a moved only end markers ({} messages for n = {n})",
        s4a.messages
    );
}
