//! End-to-end self-healing: `recover_mincut` survives seeded fail-stop
//! schedules — including the death of the elected leader — on lossy
//! networks, and returns the **exact** minimum cut of the surviving
//! component, certified in-driver against the sequential Stoer–Wagner
//! oracle. Also pins the two bracketing properties: recovery is
//! deterministic (same plan ⇒ byte-identical merged ledger), and a
//! crash-free plan degenerates to the plain faulty pipeline (identical
//! ledger, one epoch, nobody excised).

use mincut_repro::congest::sim::FaultPlan;
use mincut_repro::congest::ExecutorKind;
use mincut_repro::graphs::generators;
use mincut_repro::mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut_repro::mincut::dist::{recover_mincut, RecoverConfig};
use mincut_repro::mincut::seq::stoer_wagner;

/// Leader assassination on a lossy torus: node 0 (the min-id leader)
/// dies mid-session; the driver detects it, re-elects, and certifies
/// the surviving component's λ. Deterministically.
#[test]
fn lossy_leader_kill_recovers_the_exact_survivor_cut() {
    let g = generators::torus2d(6, 6).unwrap();
    let plan = FaultPlan::with_drop(50, 0x5EA1)
        .delayed(2)
        .with_crash(0, 40);
    let cfg = RecoverConfig::default().with_plan(plan);
    let a = recover_mincut(&g, &cfg).expect("the leader kill is recoverable");
    assert_eq!(a.dead.iter().map(|v| v.index()).collect::<Vec<_>>(), [0]);
    assert_eq!(a.survivors.len(), 35);
    assert_eq!(a.epochs, 2);
    // Certification ran in-driver; re-check it from outside anyway.
    assert_eq!(a.oracle, Some(a.cut.value));
    assert_eq!(
        a.cut.value, 3,
        "a torus node's excision leaves degree-3 corners"
    );
    assert!(a.recovery_rounds > 0, "the failed attempt was accounted");
    assert!(
        a.ledger
            .phases()
            .iter()
            .filter(|p| p.name.starts_with("recover.e1."))
            .count()
            > 1,
        "aborted-attempt phases are ledgered under the recover prefix"
    );

    let b = recover_mincut(&g, &cfg).expect("deterministic rerun");
    assert_eq!(a.cut.value, b.cut.value);
    assert_eq!(a.cut.side, b.cut.side);
    assert_eq!(
        a.ledger.phases(),
        b.ledger.phases(),
        "same plan must give a byte-identical merged ledger"
    );
}

/// A correlated group crash on the planted two-community instance: both
/// victims sit in one community, so the survivors stay connected and
/// the recovered λ — certified against the oracle on the surviving
/// subgraph — reflects the damaged community structure.
#[test]
fn group_crash_on_planted_communities_matches_the_oracle() {
    let planted = generators::clique_pair(8, 3).unwrap();
    let g = &planted.graph;
    let plan = FaultPlan::with_drop(100, 0xC0DE)
        .delayed(1)
        .duplicated(50)
        .with_crash_group(&[3, 5], 25);
    let r = recover_mincut(g, &RecoverConfig::default().with_plan(plan))
        .expect("the group crash is recoverable");
    let dead: Vec<usize> = r.dead.iter().map(|v| v.index()).collect();
    assert_eq!(dead, [3, 5]);
    assert_eq!(r.survivors.len(), g.node_count() - 2);
    assert_eq!(r.oracle, Some(r.cut.value));
    // Independent re-derivation of the oracle: Stoer–Wagner on the
    // survivor-induced subgraph, built from scratch here.
    let survivors: Vec<u32> = r.survivors.iter().map(|v| v.raw()).collect();
    let idx_of = |v: u32| survivors.binary_search(&v).ok();
    let edges: Vec<(u32, u32, u64)> = g
        .edge_tuples()
        .filter_map(|(_, u, v, w)| Some((idx_of(u.raw())? as u32, idx_of(v.raw())? as u32, w)))
        .collect();
    let sub = mincut_repro::graphs::WeightedGraph::from_edges(survivors.len(), edges).unwrap();
    assert_eq!(stoer_wagner(&sub).unwrap().value, r.cut.value);
}

/// A crash-free plan is the identity: one epoch, nobody dead, zero
/// recovery spend, and the merged ledger equals the plain faulty
/// pipeline's, phase for phase and byte for byte.
#[test]
fn crash_free_recovery_is_the_plain_faulty_pipeline() {
    let planted = generators::clique_pair(6, 2).unwrap();
    let g = &planted.graph;
    let plan = FaultPlan::with_drop(80, 0xFEED).delayed(1);
    let r = recover_mincut(g, &RecoverConfig::default().with_plan(plan.clone()))
        .expect("crash-free run succeeds");
    assert_eq!(r.epochs, 1);
    assert!(r.dead.is_empty());
    assert_eq!((r.recovery_rounds, r.recovery_messages), (0, 0));
    assert_eq!(r.cut.value, planted.planted_value);

    let cfg = ExactConfig::default().with_executor(ExecutorKind::Faulty(plan));
    let direct = exact_mincut(g, &cfg).expect("direct faulty run succeeds");
    assert_eq!(r.cut.value, direct.cut.value);
    assert_eq!(r.cut.side, direct.cut.side);
    assert_eq!(
        r.ledger.phases(),
        direct.ledger.phases(),
        "no crash ⇒ the recovery driver adds nothing to the ledger"
    );
}
