//! The paper's Figure 1, pinned through the public API.

use mincut_repro::graphs::NodeId;
use mincut_repro::mincut::dist::driver::{exact_mincut, ExactConfig};
use mincut_repro::mincut::figure1::Figure1;
use mincut_repro::mincut::reference::ReferenceStructure;

#[test]
fn fragments_and_tf() {
    let f = Figure1::build();
    let r = ReferenceStructure::new(&f.graph, f.tree.clone(), &f.fragments);
    assert_eq!(r.fragment_count(), 4);
    assert_eq!(r.tf_parent, vec![None, Some(0), Some(0), Some(0)]);
    assert_eq!(
        r.frag_roots,
        vec![
            NodeId::new(0),
            NodeId::new(3),
            NodeId::new(4),
            NodeId::new(5)
        ]
    );
}

#[test]
fn a15_matches_figure_1c() {
    let f = Figure1::build();
    let r = ReferenceStructure::new(&f.graph, f.tree.clone(), &f.fragments);
    let a15: Vec<u32> = r.a_sets[15].iter().map(|v| v.raw()).collect();
    assert_eq!(a15, vec![15, 9, 4, 1, 0]);
}

#[test]
fn merging_nodes_and_tprime_match_figure_1d() {
    let f = Figure1::build();
    let r = ReferenceStructure::new(&f.graph, f.tree.clone(), &f.fragments);
    let merging: Vec<usize> = (0..16).filter(|&v| r.merging[v]).collect();
    assert_eq!(merging, vec![0, 1]);
    assert_eq!(r.tprime_parent[&NodeId::new(3)], Some(NodeId::new(1)));
    assert_eq!(r.tprime_parent[&NodeId::new(5)], Some(NodeId::new(0)));
}

#[test]
fn distributed_run_on_figure_instance() {
    let f = Figure1::build();
    let result = exact_mincut(&f.graph, &ExactConfig::default()).unwrap();
    // The instance's minimum cut: isolating the {5,10,11} fragment side
    // costs 2 (tree edge 2–5 plus non-tree edge 2–11)… the oracle decides.
    let oracle = mincut_repro::mincut::seq::stoer_wagner(&f.graph).unwrap();
    assert_eq!(result.cut.value, oracle.value);
}
